package threeside

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccidx/internal/geom"
)

func genPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange), ID: uint64(i)}
	}
	return pts
}

func oracle(pts []geom.Point, q geom.ThreeSidedQuery) map[uint64]int {
	out := map[uint64]int{}
	for _, p := range pts {
		if q.Contains(p) {
			out[p.ID]++
		}
	}
	return out
}

func run(t *Tree, q geom.ThreeSidedQuery) map[uint64]int {
	got := map[uint64]int{}
	t.Query(q, func(p geom.Point) bool {
		got[p.ID]++
		return true
	})
	return got
}

func sameMultiset(a, b map[uint64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func randomQuery(rng *rand.Rand, coordRange int64) geom.ThreeSidedQuery {
	x1 := rng.Int63n(coordRange+4) - 2
	x2 := x1 + rng.Int63n(coordRange-x1+3)
	return geom.ThreeSidedQuery{X1: x1, X2: x2, Y: rng.Int63n(coordRange+4) - 2}
}

func requireSame(t *testing.T, tr *Tree, pts []geom.Point, q geom.ThreeSidedQuery, label string) {
	t.Helper()
	got := run(tr, q)
	want := oracle(pts, q)
	if !sameMultiset(got, want) {
		t.Fatalf("%s q=%+v: got %d ids want %d", label, q, len(got), len(want))
	}
}

func TestStaticSmallExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(250)
		pts := genPoints(rng, n, 30)
		tr := New(Config{B: 4}, pts)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for x1 := int64(-1); x1 <= 31; x1 += 3 {
			for x2 := x1; x2 <= 31; x2 += 4 {
				for y := int64(-1); y <= 31; y += 3 {
					q := geom.ThreeSidedQuery{X1: x1, X2: x2, Y: y}
					requireSame(t, tr, pts, q, "static-small")
				}
			}
		}
	}
}

func TestStaticMultiLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := genPoints(rng, 4000, 1200)
	tr := New(Config{B: 4}, pts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		requireSame(t, tr, pts, randomQuery(rng, 1200), "multilevel")
	}
}

func TestDegenerateColumns(t *testing.T) {
	// All points in very few columns: partitions collapse around ties.
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, 600)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Int63n(3) * 10, Y: rng.Int63n(500), ID: uint64(i)}
	}
	tr := New(Config{B: 4}, pts)
	for trial := 0; trial < 150; trial++ {
		requireSame(t, tr, pts, randomQuery(rng, 40), "columns")
	}
}

func TestInsertsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := genPoints(rng, 800, 300)
	tr := New(Config{B: 4}, pts)
	for i := 0; i < 1200; i++ {
		p := geom.Point{X: rng.Int63n(300), Y: rng.Int63n(300), ID: uint64(10000 + i)}
		tr.Insert(p)
		pts = append(pts, p)
		if i%300 == 299 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
			for k := 0; k < 40; k++ {
				requireSame(t, tr, pts, randomQuery(rng, 300), "dynamic")
			}
		}
	}
}

func TestInsertIntoEmpty(t *testing.T) {
	tr := New(Config{B: 4}, nil)
	rng := rand.New(rand.NewSource(5))
	var pts []geom.Point
	for i := 0; i < 500; i++ {
		p := geom.Point{X: rng.Int63n(80), Y: rng.Int63n(80), ID: uint64(i)}
		tr.Insert(p)
		pts = append(pts, p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		requireSame(t, tr, pts, randomQuery(rng, 80), "from-empty")
	}
}

func TestHighYFlood(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := genPoints(rng, 400, 100)
	tr := New(Config{B: 4}, pts)
	for i := 0; i < 500; i++ {
		p := geom.Point{X: rng.Int63n(100), Y: 1000 + int64(i), ID: uint64(70000 + i)}
		tr.Insert(p)
		pts = append(pts, p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 60; k++ {
		q := geom.ThreeSidedQuery{X1: rng.Int63n(100), X2: rng.Int63n(100), Y: rng.Int63n(1600)}
		if q.X1 > q.X2 {
			q.X1, q.X2 = q.X2, q.X1
		}
		requireSame(t, tr, pts, q, "flood")
	}
}

func TestWalkComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := genPoints(rng, 600, 200)
	tr := New(Config{B: 4}, pts[:200])
	for _, p := range pts[200:] {
		tr.Insert(p)
	}
	seen := map[uint64]bool{}
	tr.Walk(func(p geom.Point) bool { seen[p.ID] = true; return true })
	if len(seen) != 600 {
		t.Fatalf("walk saw %d of 600", len(seen))
	}
}

func TestEarlyStop(t *testing.T) {
	pts := genPoints(rand.New(rand.NewSource(8)), 400, 50)
	tr := New(Config{B: 4}, pts)
	count := 0
	tr.Query(geom.ThreeSidedQuery{X1: 0, X2: 50, Y: 0}, func(geom.Point) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop emitted %d", count)
	}
}

func TestPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := genPoints(rng, rng.Intn(400), 50)
		tr := New(Config{B: 4 + rng.Intn(3)}, pts)
		for i := 0; i < 150; i++ {
			p := geom.Point{X: rng.Int63n(50), Y: rng.Int63n(50), ID: uint64(5000 + i)}
			tr.Insert(p)
			pts = append(pts, p)
		}
		for k := 0; k < 12; k++ {
			q := randomQuery(rng, 50)
			if !sameMultiset(run(tr, q), oracle(pts, q)) {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	// Fixed-seed Rand keeps the property deterministic (testing/quick
	// defaults to a time-seeded generator).
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(77))}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func logBn(n, b int) int {
	l := 1
	v := b
	for v < n {
		v *= b
		l++
	}
	return l
}

func log2(n int) int {
	l := 0
	for v := 1; v < n; v *= 2 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// Lemma 4.3: query I/O <= c1*log_B n + c2*log2 B + c3*t/B + c4.
func TestQueryIOBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := 8
	n := 40000
	pts := genPoints(rng, n, 100000)
	tr := New(Config{B: b}, pts)
	lb := logBn(n, b*b)
	l2b := log2(b)
	for trial := 0; trial < 100; trial++ {
		q := randomQuery(rng, 100000)
		before := tr.Pager().Stats()
		tq := 0
		tr.Query(q, func(geom.Point) bool { tq++; return true })
		ios := tr.Pager().Stats().Sub(before).IOs()
		bound := int64(40*lb) + int64(20*l2b) + 8*int64(tq)/int64(b) + 40
		if ios > bound {
			t.Fatalf("q=%+v t=%d: %d I/Os exceeds bound %d", q, tq, ios, bound)
		}
	}
}

// Lemma 4.3: space O(n/B).
func TestSpaceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	b := 8
	n := 30000
	tr := New(Config{B: b}, genPoints(rng, n, 1<<40))
	if pages, limit := tr.Pager().Allocated(), int64(14*n/b); pages > limit {
		t.Fatalf("space %d pages exceeds %d", pages, limit)
	}
}

// Lemma 4.4: amortized insert bound.
func TestInsertAmortizedBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := 8
	tr := New(Config{B: b}, genPoints(rng, 15000, 1<<30))
	before := tr.Pager().Stats()
	const extra = 3000
	for i := 0; i < extra; i++ {
		tr.Insert(geom.Point{X: rng.Int63n(1 << 30), Y: rng.Int63n(1 << 30), ID: uint64(1 << 40)})
	}
	per := float64(tr.Pager().Stats().Sub(before).IOs()) / extra
	lb := float64(logBn(tr.Len(), b))
	bound := 80*lb + 30*lb*lb/float64(b) + 80
	if per > bound {
		t.Fatalf("amortized insert I/O %.1f exceeds %.1f", per, bound)
	}
	t.Logf("amortized insert I/O: %.1f (bound %.1f)", per, bound)
}
