package threeside

import "ccidx/internal/geom"

// Weak (tombstone) deletion + global rebuilding, mirroring the diagonal
// metablock tree (core/delete.go): Delete records a tombstone, the query
// emit funnel filters tombstoned copies at zero extra block I/O, and once
// tombstones exceed alpha = 1/2 of the live count the whole tree is rebuilt
// over its live points, reusing the in-place rebuildSubtree machinery that
// already serves the insert cascade. Queries keep the Lemma 4.3 bound
// because the physical multiset a query walks never exceeds (1 + alpha)
// times the live set.

// rebuildAlphaNum/Den encode the alpha threshold; see core/delete.go.
const (
	rebuildAlphaNum = 1
	rebuildAlphaDen = 2
)

// Delete weakly removes one copy of p, returning whether a live copy was
// present. Amortized O(1) I/Os plus the global-rebuild share.
func (t *Tree) Delete(p geom.Point) bool {
	if t.mult[p]-t.dead[p] <= 0 {
		return false
	}
	if t.dead == nil {
		t.dead = make(map[geom.Point]int)
	}
	t.dead[p]++
	t.deadCount++
	t.n--
	if t.deadCount*rebuildAlphaDen > t.n*rebuildAlphaNum {
		t.globalRebuild()
	}
	return true
}

// DeadCount returns the number of tombstoned copies currently awaiting a
// global rebuild.
func (t *Tree) DeadCount() int { return t.deadCount }

// Rebuilds returns how many delete-triggered global rebuilds have run.
func (t *Tree) Rebuilds() int { return t.rebuilds }

// filterLive drops tombstoned copies from pts in place, reconciling the
// mult/dead directories for every copy dropped.
func (t *Tree) filterLive(pts []geom.Point) []geom.Point {
	if t.deadCount == 0 {
		return pts
	}
	out := pts[:0]
	for _, p := range pts {
		if t.dead[p] > 0 {
			t.dead[p]--
			if t.dead[p] == 0 {
				delete(t.dead, p)
			}
			t.deadCount--
			if t.mult[p]--; t.mult[p] == 0 {
				delete(t.mult, p)
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// globalRebuild rebuilds the whole tree in place over its live points,
// resetting the tombstone state.
func (t *Tree) globalRebuild() {
	pts := t.filterLive(t.collectSubtree(t.root))
	if t.deadCount != 0 {
		panic("threeside: tombstones survived a global rebuild")
	}
	if len(pts) != t.n {
		panic("threeside: live point count drifted from n across a global rebuild")
	}
	t.rebuildInPlace(t.root, pts, nil)
	t.rebuilds++
}
