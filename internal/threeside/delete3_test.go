package threeside

import (
	"math/rand"
	"testing"

	"ccidx/internal/geom"
)

func collect3(t *Tree, q geom.ThreeSidedQuery) map[geom.Point]int {
	got := map[geom.Point]int{}
	t.Query(q, func(p geom.Point) bool {
		got[p]++
		return true
	})
	return got
}

func TestDelete3WeakThenQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := make([]geom.Point, 600)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Int63n(2000), Y: rng.Int63n(2000), ID: uint64(i)}
	}
	tr := New(Config{B: 4}, pts)

	if tr.Delete(geom.Point{X: -1, Y: -1, ID: 999999}) {
		t.Fatal("deleted an absent point")
	}
	deleted := map[geom.Point]int{}
	for i := 0; i < 180; i++ {
		p := pts[i*3]
		if !tr.Delete(p) {
			t.Fatalf("delete of present point %v failed", p)
		}
		deleted[p]++
	}
	if tr.Len() != 420 {
		t.Fatalf("Len=%d after 180 deletes", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 40; trial++ {
		x1 := rng.Int63n(2000)
		q := geom.ThreeSidedQuery{X1: x1, X2: x1 + rng.Int63n(500), Y: rng.Int63n(2000)}
		want := map[geom.Point]int{}
		for _, p := range pts {
			if q.Contains(p) {
				want[p]++
			}
		}
		for p, d := range deleted {
			if q.Contains(p) {
				want[p] -= d
				if want[p] == 0 {
					delete(want, p)
				}
			}
		}
		got := collect3(tr, q)
		if len(got) != len(want) {
			t.Fatalf("query %v: %d distinct points, want %d", q, len(got), len(want))
		}
		for p, k := range want {
			if got[p] != k {
				t.Fatalf("query %v: %v reported %d times, want %d", q, p, got[p], k)
			}
		}
	}
}

// TestDelete3GlobalRebuild deletes past the alpha threshold and checks the
// tombstone reset, the space shrink, and post-rebuild I/O sanity.
func TestDelete3GlobalRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 2000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Int63n(1 << 20), Y: rng.Int63n(1 << 20), ID: uint64(i)}
	}
	tr := New(Config{B: 8}, pts)
	spaceBefore := tr.Pager().Allocated()

	queryIOs := func() int64 {
		before := tr.Pager().Stats()
		for i := 0; i < 20; i++ {
			x1 := int64(i) * (1 << 20) / 20
			tr.Query(geom.ThreeSidedQuery{X1: x1, X2: x1 + (1<<20)/40, Y: int64(i%10) * (1 << 20) / 10},
				func(geom.Point) bool { return true })
		}
		return tr.Pager().Stats().Sub(before).IOs()
	}
	iosBefore := queryIOs()

	for i := 0; i < 4*n/5; i++ {
		if !tr.Delete(pts[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Rebuilds() == 0 {
		t.Fatal("no global rebuild after deleting 80% of the points")
	}
	if 2*tr.DeadCount() > tr.Len() {
		t.Fatalf("dead=%d exceeds alpha*live (live=%d) after rebuild", tr.DeadCount(), tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if space := tr.Pager().Allocated(); space > spaceBefore {
		t.Fatalf("space %d did not shrink from %d", space, spaceBefore)
	}
	if iosAfter := queryIOs(); iosAfter > iosBefore {
		t.Fatalf("query I/O grew after rebuild: %d > %d", iosAfter, iosBefore)
	}

	live := map[geom.Point]int{}
	for _, p := range pts[4*n/5:] {
		live[p]++
	}
	got := map[geom.Point]int{}
	tr.Walk(func(p geom.Point) bool { got[p]++; return true })
	if len(got) != len(live) {
		t.Fatalf("walk found %d distinct points, want %d", len(got), len(live))
	}
}

// TestDelete3InterleavedWithInserts churns mixed mutations through the
// maintenance ladder (including cascaded rebuildSubtree calls) with
// tombstones pending.
func TestDelete3InterleavedWithInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tr := New(Config{B: 4}, nil)
	live := map[geom.Point]int{}
	var pool []geom.Point
	nextID := uint64(0)
	for op := 0; op < 3000; op++ {
		if rng.Intn(3) < 2 || len(pool) == 0 {
			p := geom.Point{X: rng.Int63n(4000), Y: rng.Int63n(4000), ID: nextID}
			nextID++
			tr.Insert(p)
			live[p]++
			pool = append(pool, p)
		} else {
			j := rng.Intn(len(pool))
			p := pool[j]
			pool[j] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			if !tr.Delete(p) {
				t.Fatalf("op %d: delete of live point %v failed", op, p)
			}
			live[p]--
			if live[p] == 0 {
				delete(live, p)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		x1 := rng.Int63n(4000)
		q := geom.ThreeSidedQuery{X1: x1, X2: x1 + rng.Int63n(1000), Y: rng.Int63n(4000)}
		want := 0
		for p, k := range live {
			if q.Contains(p) {
				want += k
			}
		}
		got := 0
		tr.Query(q, func(geom.Point) bool { got++; return true })
		if got != want {
			t.Fatalf("query %v reported %d points, want %d", q, got, want)
		}
	}
}
