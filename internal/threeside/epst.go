// Package threeside implements the 3-sided variant of the metablock tree
// (Section 4, Lemmas 4.3 and 4.4): points in the plane, queries of the form
// [x1,x2] x [y, inf).
//
// Compared to the diagonal-corner metablock tree of internal/core, the
// structure (i) replaces corner structures by per-metablock 3-sided
// structures as prescribed by Lemma 4.1, (ii) keeps two TS structures per
// metablock, one over left siblings and one over right siblings, because a
// 3-sided query has two vertical boundary paths, and (iii) adds, for every
// internal metablock, a 3-sided structure over the union of its children's
// stored points (O(B^3) of them) for the case where both vertical sides of
// the query fall among the children of one node (the paper's case (4),
// Fig 20).
//
// Bounds: query O(log_B n + log2 B + t/B) I/Os and space O(n/B) blocks
// (Lemma 4.3); amortized insert O(log_B n + (log_B n)^2/B) (Lemma 4.4).
//
// This file implements the embedded external priority search tree used for
// all three kinds of 3-sided sub-structures. It lives on the tree's own
// pager: each node occupies one page holding up to B records plus child
// pointers and child x-spans. Records carry a 32-bit aux field so the TD
// and child-union structures can keep (slot, buffered) bookkeeping.
package threeside

import (
	"sort"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// epst is a block-resident static priority search tree over recs
// (Lemma 4.1 bounds: query O(log2 k + t/B), space O(k/B)).
type epst struct {
	root disk.BlockID
	n    int
}

type epstNode struct {
	recs        []rec // sorted by decreasing y
	left, right disk.BlockID
	lspan       span
	rspan       span
}

type span struct{ lo, hi int64 }

func (s span) intersects(x1, x2 int64) bool { return s.lo <= x2 && x1 <= s.hi }

var emptySpan = span{lo: 1, hi: 0}

// buildEPST constructs a tree over rs (copied).
func (t *Tree) buildEPST(rs []rec) epst {
	own := append([]rec(nil), rs...)
	sort.Slice(own, func(i, j int) bool { return geom.Less(own[i].pt, own[j].pt) })
	root, _ := t.buildEPSTNode(own)
	return epst{root: root, n: len(own)}
}

func (t *Tree) buildEPSTNode(rs []rec) (disk.BlockID, span) {
	if len(rs) == 0 {
		return disk.NilBlock, emptySpan
	}
	sp := span{lo: rs[0].pt.X, hi: rs[len(rs)-1].pt.X}
	nd := &epstNode{lspan: emptySpan, rspan: emptySpan}
	if len(rs) <= t.cfg.B {
		nd.recs = append([]rec(nil), rs...)
		sortYDesc(nd.recs)
		return t.writeEPSTNode(nd), sp
	}
	// Top B records by y stay here; the rest split at the median.
	idx := make([]int, len(rs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return geom.YDescLess(rs[idx[a]].pt, rs[idx[b]].pt) })
	taken := make([]bool, len(rs))
	for _, i := range idx[:t.cfg.B] {
		taken[i] = true
		nd.recs = append(nd.recs, rs[i])
	}
	sortYDesc(nd.recs)
	rest := make([]rec, 0, len(rs)-t.cfg.B)
	for i, r := range rs {
		if !taken[i] {
			rest = append(rest, r)
		}
	}
	mid := len(rest) / 2
	nd.left, nd.lspan = t.buildEPSTNode(rest[:mid])
	nd.right, nd.rspan = t.buildEPSTNode(rest[mid:])
	return t.writeEPSTNode(nd), sp
}

func sortYDesc(rs []rec) {
	sort.Slice(rs, func(i, j int) bool { return geom.YDescLess(rs[i].pt, rs[j].pt) })
}

// queryEPST reports every rec in [x1,x2] x [y,inf); emit returning false
// stops the enumeration (the function then returns false).
func (t *Tree) queryEPST(e epst, x1, x2, y int64, emit func(rec) bool) bool {
	if e.root == disk.NilBlock || x1 > x2 {
		return true
	}
	return t.queryEPSTNode(e.root, x1, x2, y, emit)
}

func (t *Tree) queryEPSTNode(id disk.BlockID, x1, x2, y int64, emit func(rec) bool) bool {
	// Decode the node straight out of a borrowed zero-copy view: the
	// records are streamed to emit and the child pointers extracted into
	// locals, so the view is released before recursing (pins never stack
	// deeper than one page on this path).
	view := disk.MustView(t.dev, id)
	cnt := int(uint16(view[0]) | uint16(view[1])<<8)
	stopped := false
	prune := cnt < t.cfg.B
	for i, off := 0, pageHeaderSize; i < cnt; i, off = i+1, off+recSize {
		r := decodeRec(view, off)
		if r.pt.Y < y {
			// Records are y-descending: nothing below this one qualifies,
			// and the heap property prunes the children too.
			prune = true
			break
		}
		if r.pt.X >= x1 && r.pt.X <= x2 {
			if !emit(r) {
				stopped = true
				break
			}
		}
	}
	left := disk.BlockID(int64(le64(view[2:])))
	right := disk.BlockID(int64(le64(view[10:])))
	lspan := span{lo: int64(le64(view[18:])), hi: int64(le64(view[26:]))}
	rspan := span{lo: int64(le64(view[34:])), hi: int64(le64(view[42:]))}
	t.dev.Release(id)
	if stopped {
		return false
	}
	if prune {
		return true
	}
	if left != disk.NilBlock && lspan.intersects(x1, x2) {
		if !t.queryEPSTNode(left, x1, x2, y, emit) {
			return false
		}
	}
	if right != disk.NilBlock && rspan.intersects(x1, x2) {
		if !t.queryEPSTNode(right, x1, x2, y, emit) {
			return false
		}
	}
	return true
}

// freeEPST releases the tree's pages.
func (t *Tree) freeEPST(e epst) {
	t.freeEPSTNode(e.root)
}

func (t *Tree) freeEPSTNode(id disk.BlockID) {
	if id == disk.NilBlock {
		return
	}
	nd := t.readEPSTNode(id)
	t.freeEPSTNode(nd.left)
	t.freeEPSTNode(nd.right)
	disk.MustFreeAt(t.dev, id)
}

// --- node page layout -------------------------------------------------------
// [0:2]   count
// [2:10]  left id      [10:18] right id
// [18:34] lspan lo,hi  [34:50] rspan lo,hi
// [64:]   records (32 bytes each)

func (t *Tree) writeEPSTNode(nd *epstNode) disk.BlockID {
	id := t.dev.Alloc()
	buf := t.wpage()
	cnt := len(nd.recs)
	buf[0] = byte(cnt)
	buf[1] = byte(cnt >> 8)
	putLE64(buf[2:], uint64(int64(nd.left)))
	putLE64(buf[10:], uint64(int64(nd.right)))
	putLE64(buf[18:], uint64(nd.lspan.lo))
	putLE64(buf[26:], uint64(nd.lspan.hi))
	putLE64(buf[34:], uint64(nd.rspan.lo))
	putLE64(buf[42:], uint64(nd.rspan.hi))
	off := pageHeaderSize
	for _, r := range nd.recs {
		putLE64(buf[off:], uint64(r.pt.X))
		putLE64(buf[off+8:], uint64(r.pt.Y))
		putLE64(buf[off+16:], r.pt.ID)
		putLE32(buf[off+24:], r.aux)
		off += recSize
	}
	disk.MustWriteAt(t.dev, id, buf)
	return id
}

func (t *Tree) readEPSTNode(id disk.BlockID) *epstNode {
	view := disk.MustView(t.dev, id)
	cnt := int(uint16(view[0]) | uint16(view[1])<<8)
	nd := &epstNode{
		left:  disk.BlockID(int64(le64(view[2:]))),
		right: disk.BlockID(int64(le64(view[10:]))),
		lspan: span{lo: int64(le64(view[18:])), hi: int64(le64(view[26:]))},
		rspan: span{lo: int64(le64(view[34:])), hi: int64(le64(view[42:]))},
	}
	off := pageHeaderSize
	nd.recs = make([]rec, cnt)
	for i := 0; i < cnt; i++ {
		nd.recs[i] = decodeRec(view, off)
		off += recSize
	}
	t.dev.Release(id)
	return nd
}
