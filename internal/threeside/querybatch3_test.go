package threeside

import (
	"math/rand"
	"sort"
	"testing"

	"ccidx/internal/geom"
)

// uniformPoints mirrors uniformPoints (that package imports
// classindex, which imports threeside — an import cycle in tests).
func uniformPoints(seed int64, n int, span int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Int63n(span), Y: rng.Int63n(span), ID: uint64(i)}
	}
	return pts
}

func sortPoints(ps []geom.Point) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.X != b.X {
			return a.X < b.X
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.ID < b.ID
	})
}

func assertBatchOracle3(t *testing.T, tr *Tree, qs []geom.ThreeSidedQuery, label string) {
	t.Helper()
	got := make([][]geom.Point, len(qs))
	tr.QueryBatch(qs, func(qi int, p geom.Point) bool {
		got[qi] = append(got[qi], p)
		return true
	})
	for qi, q := range qs {
		var want []geom.Point
		tr.Query(q, func(p geom.Point) bool {
			want = append(want, p)
			return true
		})
		sortPoints(got[qi])
		sortPoints(want)
		if len(got[qi]) != len(want) {
			t.Fatalf("%s: query %d %+v: batch %d points, sequential %d",
				label, qi, q, len(got[qi]), len(want))
		}
		for i := range want {
			if got[qi][i] != want[i] {
				t.Fatalf("%s: query %d %+v: result %d differs: %v vs %v",
					label, qi, q, i, got[qi][i], want[i])
			}
		}
	}
}

func random3Queries(rng *rand.Rand, k int, span int64) []geom.ThreeSidedQuery {
	qs := make([]geom.ThreeSidedQuery, k)
	for i := range qs {
		x1 := rng.Int63n(span) - 4
		width := rng.Int63n(span/3 + 1)
		if rng.Intn(8) == 0 {
			width = -1 - rng.Int63n(3) // invalid: reports nothing
		}
		qs[i] = geom.ThreeSidedQuery{X1: x1, X2: x1 + width, Y: rng.Int63n(span)}
	}
	return qs
}

// TestQueryBatch3Oracle checks batch == sequential on static builds.
func TestQueryBatch3Oracle(t *testing.T) {
	for _, b := range []int{4, 8} {
		for _, n := range []int{0, 5, 300, 6000} {
			span := int64(4*n + 32)
			tr := New(Config{B: b}, uniformPoints(int64(40+n), n, span))
			rng := rand.New(rand.NewSource(int64(41 + n)))
			for trial := 0; trial < 6; trial++ {
				assertBatchOracle3(t, tr, random3Queries(rng, rng.Intn(40)+1, span), "static")
			}
		}
	}
}

// TestQueryBatch3ChurnOracle checks batch == sequential while the dynamic
// machinery (update blocks, TD, splits) and tombstones are live.
func TestQueryBatch3ChurnOracle(t *testing.T) {
	const b = 4
	span := int64(4000)
	base := uniformPoints(43, 700, span)
	tr := New(Config{B: b}, base)
	rng := rand.New(rand.NewSource(44))
	live := append([]geom.Point(nil), base...)
	for i := 0; i < 1000; i++ {
		switch {
		case rng.Intn(3) == 0 && len(live) > 10:
			j := rng.Intn(len(live))
			if !tr.Delete(live[j]) {
				t.Fatalf("delete of live point %v failed", live[j])
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		default:
			p := geom.Point{X: rng.Int63n(span), Y: rng.Int63n(span), ID: uint64(10000 + i)}
			if rng.Intn(8) == 0 && len(live) > 0 {
				q := live[rng.Intn(len(live))]
				p.X, p.Y = q.X, q.Y
			}
			tr.Insert(p)
			live = append(live, p)
		}
		if i%200 == 199 {
			assertBatchOracle3(t, tr, random3Queries(rng, 32, span), "churn")
		}
	}
	if tr.DeadCount() == 0 {
		t.Fatalf("churn stream left no tombstones")
	}
	assertBatchOracle3(t, tr, random3Queries(rng, 200, span), "churn-final")
}

// TestQueryBatch3SharesIOs asserts the amortization and the batch-of-one
// cost bound.
func TestQueryBatch3SharesIOs(t *testing.T) {
	span := int64(1 << 20)
	tr := New(Config{B: 8}, uniformPoints(45, 40000, span))
	rng := rand.New(rand.NewSource(46))
	qs := make([]geom.ThreeSidedQuery, 128)
	for i := range qs {
		x1 := rng.Int63n(span)
		qs[i] = geom.ThreeSidedQuery{X1: x1, X2: x1 + span/64, Y: rng.Int63n(span)}
	}
	before := tr.Pager().Stats()
	for _, q := range qs {
		tr.Query(q, func(geom.Point) bool { return true })
	}
	seq := tr.Pager().Stats().Sub(before).IOs()
	before = tr.Pager().Stats()
	tr.QueryBatch(qs, func(int, geom.Point) bool { return true })
	batch := tr.Pager().Stats().Sub(before).IOs()
	// The t/B output term dominates 3-sided queries and cannot be shared;
	// the batch must still save a solid fraction of the search-term I/Os.
	if batch*4 > seq*3 {
		t.Fatalf("batched traversal shared too little: %d I/Os batched vs %d sequential", batch, seq)
	}
	for _, q := range qs[:8] {
		before = tr.Pager().Stats()
		tr.Query(q, func(geom.Point) bool { return true })
		one := tr.Pager().Stats().Sub(before).IOs()
		before = tr.Pager().Stats()
		tr.QueryBatch([]geom.ThreeSidedQuery{q}, func(int, geom.Point) bool { return true })
		b1 := tr.Pager().Stats().Sub(before).IOs()
		if b1 > one {
			t.Fatalf("batch of one cost %d I/Os, sequential %d (q=%+v)", b1, one, q)
		}
	}
}
