package threeside

import (
	"fmt"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Walk enumerates every live point in the tree (stored and buffered), in no
// particular order; tombstoned copies are filtered like the query path
// filters them.
func (t *Tree) Walk(emit geom.Emit) {
	if t.deadCount == 0 {
		t.walk(t.root, emit)
		return
	}
	suppressed := make(map[geom.Point]int)
	t.walk(t.root, func(p geom.Point) bool {
		if suppressed[p] < t.dead[p] {
			suppressed[p]++
			return true
		}
		return emit(p)
	})
}

func (t *Tree) walk(id disk.BlockID, emit geom.Emit) bool {
	m := t.loadCtrl(id)
	for _, hb := range m.hblocks {
		for _, p := range t.readPoints(hb.id) {
			if !emit(p) {
				return false
			}
		}
	}
	for _, p := range t.updPoints(m.upd) {
		if !emit(p) {
			return false
		}
	}
	for _, c := range m.children {
		if !t.walk(c.ctrl, emit) {
			return false
		}
	}
	return true
}

type childData struct{ stored []geom.Point }

// CheckInvariants validates the structural invariants; see the diagonal
// tree's version for the reasoning behind each condition.
func (t *Tree) CheckInvariants() error {
	total, err := t.checkNode(t.root)
	if err != nil {
		return err
	}
	// The physical structure holds the live points plus the tombstoned
	// copies awaiting the next global rebuild.
	if total != t.n+t.deadCount {
		return fmt.Errorf("threeside: tree claims %d live + %d dead points, found %d", t.n, t.deadCount, total)
	}
	return nil
}

func (t *Tree) checkNode(id disk.BlockID) (int, error) {
	m := t.loadCtrl(id)
	cap2 := t.cap2()

	stored := t.readStoredPoints(m)
	if len(stored) != m.count {
		return 0, fmt.Errorf("threeside: node %d: count %d but %d points in hblocks", id, m.count, len(stored))
	}
	if m.count > 2*cap2 {
		return 0, fmt.Errorf("threeside: node %d: %d stored exceeds 2B^2", id, m.count)
	}
	if bb := bboxOf(stored); bb != m.bb {
		return 0, fmt.Errorf("threeside: node %d: stale bbox", id)
	}
	if m.pst.n != m.count {
		return 0, fmt.Errorf("threeside: node %d: per-node PST has %d records, want %d", id, m.pst.n, m.count)
	}
	// The per-node PST enumerates exactly the stored multiset.
	pstPts := map[geom.Point]int{}
	t.queryEPST(m.pst, -1<<62, 1<<62, -1<<62, func(r rec) bool {
		pstPts[r.pt]++
		return true
	})
	for _, p := range stored {
		if pstPts[p] == 0 {
			return 0, fmt.Errorf("threeside: node %d: PST missing stored point %v", id, p)
		}
		pstPts[p]--
	}
	if m.upd.count > t.cfg.B {
		return 0, fmt.Errorf("threeside: node %d: update block overflow", id)
	}

	if len(m.children) == 0 {
		return m.count + m.upd.count, nil
	}
	if len(m.children) >= 2*t.cfg.B {
		return 0, fmt.Errorf("threeside: node %d: branching %d >= 2B", id, len(m.children))
	}

	tdEntries := t.readTDEntries(m)
	if m.td != nil {
		tdEntries = append(tdEntries, t.updRecs(m.td.upd)...)
	}
	tdBuffered := map[int]map[geom.Point]int{}
	tdMergedAny := map[geom.Point]bool{}
	for _, r := range tdEntries {
		if tdInU(r.aux) {
			slot := tdSlot(r.aux)
			if tdBuffered[slot] == nil {
				tdBuffered[slot] = map[geom.Point]int{}
			}
			tdBuffered[slot][r.pt]++
		} else {
			tdMergedAny[r.pt] = true
		}
	}
	unionPts := map[geom.Point]int{}
	t.queryEPST(m.union, -1<<62, 1<<62, -1<<62, func(r rec) bool {
		unionPts[r.pt]++
		return true
	})

	total := m.count + m.upd.count
	prevHi := int64(-1 << 63)
	children := make([]childData, len(m.children))
	for i, c := range m.children {
		if c.xlo > c.xhi {
			return 0, fmt.Errorf("threeside: node %d child %d: inverted partition", id, i)
		}
		if c.xlo < prevHi {
			return 0, fmt.Errorf("threeside: node %d child %d: partition overlap", id, i)
		}
		prevHi = c.xhi
		cm := t.loadCtrl(c.ctrl)
		if cm.count != c.storedCount || cm.bb != c.bb {
			return 0, fmt.Errorf("threeside: node %d child %d: stale child ref", id, i)
		}
		for _, p := range t.updPoints(cm.upd) {
			if tdBuffered[i][p] == 0 {
				return 0, fmt.Errorf("threeside: node %d child %d: buffered point %v not in TD", id, i, p)
			}
			tdBuffered[i][p]--
		}
		cs := t.readStoredPoints(cm)
		children[i] = childData{stored: cs}
		// Union coverage: every current stored point of a child is either
		// in the union structure (build-time) or registered as a merged TD
		// entry.
		for _, p := range cs {
			if unionPts[p] > 0 {
				unionPts[p]--
				continue
			}
			if !tdMergedAny[p] {
				return 0, fmt.Errorf("threeside: node %d child %d: stored point %v in neither union structure nor TD", id, i, p)
			}
		}
		sub, err := t.checkNode(c.ctrl)
		if err != nil {
			return 0, err
		}
		if int64(sub) != c.subtreeCount {
			return 0, fmt.Errorf("threeside: node %d child %d: subtreeCount %d, actual %d", id, i, c.subtreeCount, sub)
		}
		total += sub
	}

	// Directional TS coverage for each child.
	for i := range m.children {
		cm := t.loadCtrl(m.children[i].ctrl)
		if err := t.checkTS(id, i, cm.tsl, children[:i], tdMergedAny); err != nil {
			return 0, err
		}
		if err := t.checkTS(id, i, cm.tsr, children[i+1:], tdMergedAny); err != nil {
			return 0, err
		}
	}
	return total, nil
}

func (t *Tree) checkTS(id disk.BlockID, childIdx int, ts tsInfo, side []childData, tdMerged map[geom.Point]bool) error {
	sidePts := map[geom.Point]int{}
	for _, cd := range side {
		for _, p := range cd.stored {
			sidePts[p]++
		}
	}
	tsPts := map[geom.Point]int{}
	tsTotal := 0
	for _, b := range ts.blocks {
		for _, p := range t.readPoints(b.id) {
			tsPts[p]++
			tsTotal++
		}
	}
	if tsTotal != ts.count {
		return fmt.Errorf("threeside: node %d child %d: TS count %d but %d points", id, childIdx, ts.count, tsTotal)
	}
	for p, k := range tsPts {
		if sidePts[p] < k {
			return fmt.Errorf("threeside: node %d child %d: TS point %v not stored on its side", id, childIdx, p)
		}
	}
	if ts.count == 0 {
		return nil
	}
	seen := map[geom.Point]int{}
	for _, cd := range side {
		for _, p := range cd.stored {
			if p.Y <= ts.bottomY {
				continue
			}
			seen[p]++
			if seen[p] <= tsPts[p] {
				continue
			}
			if !tdMerged[p] {
				return fmt.Errorf("threeside: node %d child %d: stored point %v above TS bottom missing from TS and TD", id, childIdx, p)
			}
		}
	}
	return nil
}
