package threeside

import (
	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// 3-sided query processing (Lemma 4.3, Figs 20-21).
//
// The query [x1,x2] x [y,inf) descends a common path while one child's
// partition contains both vertical sides. Where the paths diverge — the
// paper's case (4) — the stored points of the strictly-between children are
// answered from the divergence node's child-union 3-sided structure (one
// access, O(log2 B + t'/B)); below the divergence, the left boundary path
// uses the TSR structures and the right boundary path the TSL structures
// exactly as the diagonal tree uses TS (the per-level decision between
// "read the TS prefix" and "the siblings hold at least B^2 answers, examine
// them individually"). A boundary node whose box straddles the query bottom
// is one of the at most two "corner" metablocks and is answered from its
// own 3-sided structure; boundary nodes above the bottom use their vertical
// blockings with O(1) wasted blocks. TD structures fold in buffered and
// recently merged points as in the diagonal tree (Lemma 4.4).

// Query reports every point in [q.X1,q.X2] x [q.Y, inf). Enumeration stops
// early if emit returns false.
// Cost: O(log_B n + log2 B + t/B) I/Os (Lemma 4.3).
func (t *Tree) Query(q geom.ThreeSidedQuery, emit geom.Emit) {
	if !q.Valid() {
		return
	}
	st := &qstate{q: q, emit: emit}
	if t.deadCount > 0 {
		st.dead = t.dead
	}
	st.offerFn = st.offer
	st.offerRec = func(r rec) bool { return st.offer(r.pt) }
	st.offerYFn = func(p geom.Point) bool {
		if p.Y >= st.q.Y {
			return st.offer(p)
		}
		return true
	}
	f := t.getFrame()
	m := t.loadCtrlFrame(t.root, f)
	if t.scanUpd(m.upd, st.offerRec) {
		t.visitLoaded(f, st, true)
	}
	t.putFrame(f)
}

type qstate struct {
	q       geom.ThreeSidedQuery
	emit    geom.Emit
	stopped bool

	// dead is the tree's tombstone directory, nil when no weak deletes are
	// pending; suppressed counts the copies this query has already hidden
	// (see core's qstate for the per-copy semantics).
	dead       map[geom.Point]int
	suppressed map[geom.Point]int

	// Bound forms of offer, built once per query so hot scan loops don't
	// materialize a closure per page; offerYFn filters to p.Y >= q.Y.
	offerFn  geom.Emit
	offerRec func(rec) bool
	offerYFn geom.Emit

	// scanDone is grouped-scan bookkeeping of the batched query path
	// (querybatch3.go); unused by single-query paths.
	scanDone bool
}

// offer is the single emit funnel of the query; tombstoned copies are
// filtered here, so weak deletes cost queries no extra block reads.
func (st *qstate) offer(p geom.Point) bool {
	if st.stopped {
		return false
	}
	if st.q.Contains(p) {
		if st.dead != nil {
			if d := st.dead[p]; d > 0 {
				if st.suppressed == nil {
					st.suppressed = make(map[geom.Point]int)
				}
				if st.suppressed[p] < d {
					st.suppressed[p]++
					return true
				}
			}
		}
		if !st.emit(p) {
			st.stopped = true
			return false
		}
	}
	return true
}

func (t *Tree) visit(id disk.BlockID, st *qstate, reportStored bool) {
	if st.stopped {
		return
	}
	f := t.getFrame()
	t.loadCtrlFrame(id, f)
	t.visitLoaded(f, st, reportStored)
	t.putFrame(f)
}

func (t *Tree) visitLoaded(f *ctrlFrame, st *qstate, reportStored bool) {
	if st.stopped {
		return
	}
	m := &f.m
	if reportStored {
		t.reportStored3(m, st)
		if st.stopped {
			return
		}
	}
	if len(m.children) == 0 {
		return
	}
	t.processChildren3(f, st)
}

// reportStored3 emits m's stored points inside the query using the cheapest
// adequate organisation.
func (t *Tree) reportStored3(m *metaCtrl, st *qstate) {
	q := st.q
	if m.count == 0 || !m.bb.valid || m.bb.maxY < q.Y || m.bb.maxX < q.X1 || m.bb.minX > q.X2 {
		return
	}
	contained := m.bb.minX >= q.X1 && m.bb.maxX <= q.X2
	switch {
	case m.bb.minY >= q.Y && contained:
		// Entirely inside: dump everything.
		for _, hb := range m.hblocks {
			if !t.scanPoints(hb.id, st.offerFn) {
				return
			}
		}
	case m.bb.minY >= q.Y:
		// Above the bottom, crossed by a vertical side: scan the vertical
		// blocking across [x1,x2] with at most two partial blocks.
		for _, vb := range m.vblocks {
			if vb.minX > q.X2 {
				break
			}
			if vb.maxX < q.X1 {
				continue
			}
			if !t.scanPoints(vb.id, st.offerFn) {
				return
			}
		}
	case contained:
		// Crossed by the bottom only: horizontal blocking top-down.
		for _, hb := range m.hblocks {
			if hb.maxY < q.Y {
				break
			}
			if !t.scanPoints(hb.id, st.offerFn) {
				return
			}
			if hb.minY < q.Y {
				break
			}
		}
	default:
		// A corner metablock: both a vertical side and the bottom cross the
		// box. Use the per-metablock 3-sided structure (Lemma 4.1); this
		// happens at most twice per query.
		t.queryEPST(m.pst, q.X1, q.X2, q.Y, st.offerRec)
	}
}

type class3 int

const (
	c3Skip     class3 = iota // outside [x1,x2], or stored+subtree below the bottom
	c3Both                   // extends beyond the query on both sides
	c3Left                   // extends beyond the query on the left only
	c3Right                  // extends beyond the query on the right only
	c3Inside                 // contained in x, stored box entirely above the bottom
	c3Straddle               // contained in x, stored box crossed by the bottom
)

// classify3 types a child against the query. Containment is checked first:
// with duplicate coordinates two adjacent partitions may share a boundary
// value, so "contains x1" alone does not make a child a boundary child.
// A boundary child must extend strictly beyond the query on some side, and
// because partitions are disjoint (boundary values aside) there is at most
// one left-extender and one right-extender.
func classify3(c childRef, q geom.ThreeSidedQuery) class3 {
	if c.xhi < q.X1 || c.xlo > q.X2 {
		return c3Skip
	}
	if c.xlo >= q.X1 && c.xhi <= q.X2 {
		// Contained in [x1,x2]: type by the stored box.
		if !c.bb.valid || c.bb.maxY < q.Y {
			return c3Skip
		}
		if c.bb.minY >= q.Y {
			return c3Inside
		}
		return c3Straddle
	}
	extLeft := c.xlo < q.X1
	extRight := c.xhi > q.X2
	switch {
	case extLeft && extRight:
		return c3Both
	case extLeft:
		return c3Left
	default:
		return c3Right
	}
}

func (t *Tree) processChildren3(f *ctrlFrame, st *qstate) {
	m := &f.m
	q := st.q
	n := len(m.children)
	if cap(f.classes) >= n {
		f.classes = f.classes[:n]
	} else {
		f.classes = make([]class3, n)
	}
	classes := f.classes
	both, bl, br := -1, -1, -1
	for i, c := range m.children {
		classes[i] = classify3(c, q)
		switch classes[i] {
		case c3Both:
			both = i
		case c3Left:
			bl = i
		case c3Right:
			br = i
		}
	}
	if cap(f.direct) >= n {
		f.direct = f.direct[:n]
		clear(f.direct)
	} else {
		f.direct = make([]bool, n)
	}
	direct := f.direct

	switch {
	case both >= 0:
		// Common path continues; every other child is outside [x1,x2].
		direct[both] = true
		t.visit(m.children[both].ctrl, st, true)

	case bl >= 0 && br >= 0:
		// Divergence node: the paper's case (4). Stored points of the
		// children strictly between the boundaries come from the
		// child-union 3-sided structure in one access.
		if !t.queryEPST(m.union, q.X1, q.X2, q.Y, func(r rec) bool {
			if s := tdSlot(r.aux); s == bl || s == br {
				return true // boundary children report their own stored
			}
			return st.offer(r.pt)
		}) {
			return
		}
		for i := range m.children {
			switch classes[i] {
			case c3Inside:
				// Stored already reported via the union structure; deeper
				// answers need the recursion.
				t.visit(m.children[i].ctrl, st, false)
			case c3Straddle:
				// Stored via union; descendants below the bottom.
			}
			if st.stopped {
				return
			}
		}
		direct[bl], direct[br] = true, true
		t.visit(m.children[bl].ctrl, st, true)
		if st.stopped {
			return
		}
		t.visit(m.children[br].ctrl, st, true)

	default:
		// Boundary path (or fully covering range): contained children are
		// handled with the directional TS structures.
		if !t.processContained(m, classes, direct, br < 0, st) {
			return
		}
		if bl >= 0 {
			direct[bl] = true
			t.visit(m.children[bl].ctrl, st, true)
		}
		if br >= 0 {
			direct[br] = true
			t.visit(m.children[br].ctrl, st, true)
		}
	}
	if st.stopped {
		return
	}

	// TD consultation, mirroring the diagonal tree.
	if m.td != nil {
		emitTD := func(r rec) bool {
			slot := tdSlot(r.aux)
			if slot < len(direct) && direct[slot] && !tdInU(r.aux) {
				return true
			}
			return st.offer(r.pt)
		}
		if m.td.pst.root != disk.NilBlock {
			if !t.queryEPST(m.td.pst, q.X1, q.X2, q.Y, emitTD) {
				return
			}
		}
		if !t.scanUpd(m.td.upd, emitTD) {
			return
		}
	}
}

// processContained handles the x-contained children of a boundary-path node
// using TSR structures (on the left path, useRight=true: the anchor is the
// leftmost straddling child and its TSR covers the children to its right)
// or TSL structures (mirror, on the right path). Returns false on early
// stop.
func (t *Tree) processContained(m *metaCtrl, classes []class3, direct []bool, useRight bool, st *qstate) bool {
	q := st.q
	n := len(m.children)
	// Locate the anchor straddler.
	anchor := -1
	if useRight {
		for i := 0; i < n; i++ {
			if classes[i] == c3Straddle {
				anchor = i
				break
			}
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			if classes[i] == c3Straddle {
				anchor = i
				break
			}
		}
	}
	if anchor < 0 {
		// Only inside/below children: visit the inside ones directly (all
		// their stored points are answers, so they pay for themselves).
		for i := 0; i < n; i++ {
			if classes[i] == c3Inside {
				direct[i] = true
				t.visit(m.children[i].ctrl, st, true)
				if st.stopped {
					return false
				}
			}
		}
		return true
	}

	// Examine the anchor directly. The anchor's frame stays live until this
	// function returns: its TS block list is scanned below while nested
	// visits use their own frames.
	direct[anchor] = true
	af := t.getFrame()
	defer t.putFrame(af)
	anchorCtrl := t.loadCtrlFrame(m.children[anchor].ctrl, af)
	t.reportStored3(anchorCtrl, st)
	if st.stopped {
		return false
	}

	// Siblings on the anchor's far side via its directional TS structure.
	var ts tsInfo
	var farSide []int
	if useRight {
		ts = anchorCtrl.tsr
		for i := anchor + 1; i < n; i++ {
			farSide = append(farSide, i)
		}
	} else {
		ts = anchorCtrl.tsl
		for i := 0; i < anchor; i++ {
			farSide = append(farSide, i)
		}
	}
	// totalFar counts every far-side child's stored points (the TS pool
	// spans them all), so ts.count == totalFar certifies completeness.
	totalFar := 0
	relevantFar := 0
	for _, i := range farSide {
		totalFar += m.children[i].storedCount
		if classes[i] == c3Inside || classes[i] == c3Straddle {
			relevantFar += m.children[i].storedCount
		}
	}
	covers := relevantFar == 0 || (ts.count > 0 && (ts.bottomY < q.Y || ts.count == totalFar))
	if covers {
		for _, hb := range ts.blocks {
			if hb.maxY < q.Y {
				break
			}
			if !t.scanPoints(hb.id, st.offerYFn) {
				return false
			}
			if hb.minY < q.Y {
				break
			}
		}
		for _, i := range farSide {
			if classes[i] == c3Inside {
				t.visit(m.children[i].ctrl, st, false)
				if st.stopped {
					return false
				}
			}
		}
	} else {
		for _, i := range farSide {
			switch classes[i] {
			case c3Inside:
				direct[i] = true
				t.visit(m.children[i].ctrl, st, true)
			case c3Straddle:
				direct[i] = true
				cf := t.getFrame()
				cm := t.loadCtrlFrame(m.children[i].ctrl, cf)
				t.reportStored3(cm, st)
				t.putFrame(cf)
			}
			if st.stopped {
				return false
			}
		}
	}

	// Siblings on the anchor's near side are inside or below (the anchor is
	// the extreme straddler): visit the inside ones directly.
	if useRight {
		for i := 0; i < anchor; i++ {
			if classes[i] == c3Inside {
				direct[i] = true
				t.visit(m.children[i].ctrl, st, true)
				if st.stopped {
					return false
				}
			}
		}
	} else {
		for i := anchor + 1; i < n; i++ {
			if classes[i] == c3Inside {
				direct[i] = true
				t.visit(m.children[i].ctrl, st, true)
				if st.stopped {
					return false
				}
			}
		}
	}
	return true
}
