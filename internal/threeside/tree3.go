package threeside

import (
	"fmt"
	"sync"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

const (
	recSize        = 32
	pageHeaderSize = 64
	blobHeader     = 8 + 2
)

// Config collects the tunable parameters of a 3-sided metablock tree.
type Config struct {
	// B is the block capacity in records; metablocks hold up to B^2 points
	// (2B^2 transiently). Must be at least 4.
	B int
}

// PageSize returns the page size in bytes implied by cfg.
func (cfg Config) PageSize() int { return pageHeaderSize + cfg.B*recSize }

// Tree is a 3-sided metablock tree over arbitrary planar points.
//
// Concurrency: mutations (New, Insert, Delete) require external
// serialization; queries (Query, Walk) may run concurrently with each other
// — they only read pages, consult the (then-immutable) tombstone directory,
// and use no shared mutable scratch.
type Tree struct {
	cfg   Config
	pager disk.Store
	dev   disk.Device // page I/O surface; the store, or a pool over it
	root  disk.BlockID
	n     int // LIVE points (physical copies = n + deadCount)

	// Weak-delete state (delete3.go): the in-memory physical-multiset
	// directory, the tombstone multiset, and the rebuild counter — the same
	// scheme as the diagonal tree's (core/delete.go).
	mult      map[geom.Point]int
	dead      map[geom.Point]int
	deadCount int
	rebuilds  int

	// wbuf is the reusable page-encode scratch (mutate paths only).
	wbuf []byte
	// frames recycles query-path control decode targets.
	frames sync.Pool
	// bscratch recycles the per-node routing scratch of batched queries
	// (querybatch3.go), the batch counterpart of frames.
	bscratch sync.Pool
}

// New builds the tree statically over pts (copied).
func New(cfg Config, pts []geom.Point) *Tree {
	return NewOn(cfg, disk.NewPager(cfg.PageSize()), pts)
}

// NewOn is New over a caller-provided store — an in-memory pager or a
// file-backed device — whose page size must be exactly cfg.PageSize().
func NewOn(cfg Config, store disk.Store, pts []geom.Point) *Tree {
	t := skeletonOn(cfg, store)
	t.n = len(pts)
	own := append([]geom.Point(nil), pts...)
	for _, p := range own {
		t.mult[p]++
	}
	geom.SortByX(own)
	t.root = t.buildMeta(own).ctrl
	return t
}

func skeletonOn(cfg Config, store disk.Store) *Tree {
	if cfg.B < 4 {
		panic("threeside: B must be at least 4")
	}
	if store.PageSize() != cfg.PageSize() {
		panic(fmt.Sprintf("threeside: store page size %d, want %d for B=%d",
			store.PageSize(), cfg.PageSize(), cfg.B))
	}
	t := &Tree{cfg: cfg, pager: store, mult: make(map[geom.Point]int)}
	t.dev = t.pager
	return t
}

// Pager exposes the underlying store for I/O accounting.
func (t *Tree) Pager() disk.Store { return t.pager }

// SetDevice routes all page I/O through d — typically a *disk.Pool over
// Pager(). Call before sharing the tree between goroutines.
func (t *Tree) SetDevice(d disk.Device) { t.dev = d }

// Len returns the number of points stored.
func (t *Tree) Len() int { return t.n }

// B returns the block capacity.
func (t *Tree) B() int { return t.cfg.B }

func (t *Tree) cap2() int { return t.cfg.B * t.cfg.B }

// rec is a stored record: a point plus bookkeeping aux.
type rec struct {
	pt  geom.Point
	aux uint32
}

const tdInUFlag = 1 << 16

func tdAux(slot int, inU bool) uint32 {
	a := uint32(slot)
	if inU {
		a |= tdInUFlag
	}
	return a
}

func tdSlot(aux uint32) int { return int(aux & 0xFFFF) }
func tdInU(aux uint32) bool { return aux&tdInUFlag != 0 }

// --- bounding boxes ----------------------------------------------------------

type bbox struct {
	minX, maxX, minY, maxY int64
	valid                  bool
}

func newBBox() bbox {
	return bbox{minX: 1<<63 - 1, maxX: -1 << 63, minY: 1<<63 - 1, maxY: -1 << 63}
}

func (b *bbox) add(p geom.Point) {
	if p.X < b.minX {
		b.minX = p.X
	}
	if p.X > b.maxX {
		b.maxX = p.X
	}
	if p.Y < b.minY {
		b.minY = p.Y
	}
	if p.Y > b.maxY {
		b.maxY = p.Y
	}
	b.valid = true
}

func bboxOf(pts []geom.Point) bbox {
	bb := newBBox()
	for _, p := range pts {
		bb.add(p)
	}
	return bb
}

// --- raw blocks and blobs ----------------------------------------------------

type chunkRef struct {
	id                     disk.BlockID
	n                      int
	minX, maxX, minY, maxY int64
}

// wpage returns the zeroed reusable page-encode scratch (mutate paths only).
func (t *Tree) wpage() []byte {
	if t.wbuf == nil {
		t.wbuf = make([]byte, t.cfg.PageSize())
	} else {
		clear(t.wbuf)
	}
	return t.wbuf
}

func (t *Tree) putRecBlock(id disk.BlockID, rs []rec) {
	buf := t.wpage()
	buf[0] = byte(len(rs))
	buf[1] = byte(len(rs) >> 8)
	off := pageHeaderSize
	for _, r := range rs {
		putLE64(buf[off:], uint64(r.pt.X))
		putLE64(buf[off+8:], uint64(r.pt.Y))
		putLE64(buf[off+16:], r.pt.ID)
		putLE32(buf[off+24:], r.aux)
		off += recSize
	}
	disk.MustWriteAt(t.dev, id, buf)
}

func (t *Tree) writeRecBlock(rs []rec) disk.BlockID {
	if len(rs) > t.cfg.B {
		panic("threeside: record block overflow")
	}
	id := t.dev.Alloc()
	t.putRecBlock(id, rs)
	return id
}

// decodeRec decodes the record at byte offset off of a page view.
func decodeRec(view []byte, off int) rec {
	return rec{
		pt: geom.Point{
			X:  int64(le64(view[off:])),
			Y:  int64(le64(view[off+8:])),
			ID: le64(view[off+16:]),
		},
		aux: le32(view[off+24:]),
	}
}

// scanRecs streams the records of page id to fn through a borrowed
// zero-copy view (one I/O, no allocation); false if fn stopped the scan.
func (t *Tree) scanRecs(id disk.BlockID, fn func(rec) bool) bool {
	view := disk.MustView(t.dev, id)
	cnt := int(uint16(view[0]) | uint16(view[1])<<8)
	ok := true
	for i, off := 0, pageHeaderSize; i < cnt; i, off = i+1, off+recSize {
		if !fn(decodeRec(view, off)) {
			ok = false
			break
		}
	}
	t.dev.Release(id)
	return ok
}

// scanPoints is scanRecs restricted to the point payload.
func (t *Tree) scanPoints(id disk.BlockID, fn geom.Emit) bool {
	view := disk.MustView(t.dev, id)
	cnt := int(uint16(view[0]) | uint16(view[1])<<8)
	ok := true
	for i, off := 0, pageHeaderSize; i < cnt; i, off = i+1, off+recSize {
		p := geom.Point{
			X:  int64(le64(view[off:])),
			Y:  int64(le64(view[off+8:])),
			ID: le64(view[off+16:]),
		}
		if !fn(p) {
			ok = false
			break
		}
	}
	t.dev.Release(id)
	return ok
}

func (t *Tree) readRecBlock(id disk.BlockID) []rec {
	var rs []rec
	t.scanRecs(id, func(r rec) bool {
		rs = append(rs, r)
		return true
	})
	return rs
}

func (t *Tree) writeRecChunks(rs []rec) []chunkRef {
	var refs []chunkRef
	for i := 0; i < len(rs); i += t.cfg.B {
		j := i + t.cfg.B
		if j > len(rs) {
			j = len(rs)
		}
		chunk := rs[i:j]
		bb := newBBox()
		for _, r := range chunk {
			bb.add(r.pt)
		}
		refs = append(refs, chunkRef{
			id: t.writeRecBlock(chunk), n: len(chunk),
			minX: bb.minX, maxX: bb.maxX, minY: bb.minY, maxY: bb.maxY,
		})
	}
	return refs
}

func (t *Tree) writePointChunks(pts []geom.Point) []chunkRef {
	rs := make([]rec, len(pts))
	for i, p := range pts {
		rs[i] = rec{pt: p}
	}
	return t.writeRecChunks(rs)
}

func (t *Tree) readPoints(id disk.BlockID) []geom.Point {
	rs := t.readRecBlock(id)
	pts := make([]geom.Point, len(rs))
	for i, r := range rs {
		pts[i] = r.pt
	}
	return pts
}

func (t *Tree) freeChunks(refs []chunkRef) {
	for _, c := range refs {
		disk.MustFreeAt(t.dev, c.id)
	}
}

func (t *Tree) blobCapacity() int { return t.cfg.PageSize() - blobHeader }

func (t *Tree) writeBlob(data []byte) disk.BlockID {
	capPerPage := t.blobCapacity()
	var next disk.BlockID = disk.NilBlock
	pages := (len(data) + capPerPage - 1) / capPerPage
	if pages == 0 {
		pages = 1
	}
	for i := pages - 1; i >= 0; i-- {
		lo := i * capPerPage
		hi := lo + capPerPage
		if hi > len(data) {
			hi = len(data)
		}
		chunk := data[lo:hi]
		buf := t.wpage()
		putLE64(buf, uint64(int64(next)))
		buf[8] = byte(len(chunk))
		buf[9] = byte(len(chunk) >> 8)
		copy(buf[blobHeader:], chunk)
		id := t.dev.Alloc()
		disk.MustWriteAt(t.dev, id, buf)
		next = id
	}
	return next
}

// chainGuard bounds a blob-chain walk: a chain of distinct blocks can
// never be longer than the device's page array, so exceeding that proves a
// cycle (block reuse corruption). Failing loudly here turns a would-be
// infinite loop into a diagnosable panic. NumPages (not the Stats
// counters) is the bound because ResetStats zeroes the counters.
func (t *Tree) chainGuard(steps int) {
	if steps > t.pager.NumPages() {
		panic("threeside: blob chain exceeds device pages (cycle from block reuse corruption)")
	}
}

// appendBlob reads a page chain through zero-copy views, appending the
// payload to dst (reusing its capacity); each chain page costs one I/O.
func (t *Tree) appendBlob(dst []byte, head disk.BlockID) []byte {
	steps := 0
	for id := head; id != disk.NilBlock; {
		steps++
		t.chainGuard(steps)
		view := disk.MustView(t.dev, id)
		next := disk.BlockID(int64(le64(view)))
		n := int(uint16(view[8]) | uint16(view[9])<<8)
		dst = append(dst, view[blobHeader:blobHeader+n]...)
		t.dev.Release(id)
		id = next
	}
	return dst
}

func (t *Tree) readBlob(head disk.BlockID) []byte {
	return t.appendBlob(nil, head)
}

func (t *Tree) freeBlob(head disk.BlockID) {
	steps := 0
	for id := head; id != disk.NilBlock; {
		steps++
		t.chainGuard(steps)
		view := disk.MustView(t.dev, id)
		next := disk.BlockID(int64(le64(view)))
		t.dev.Release(id)
		disk.MustFreeAt(t.dev, id)
		id = next
	}
}

func (t *Tree) rewriteBlob(old disk.BlockID, data []byte) disk.BlockID {
	if old == disk.NilBlock {
		return t.writeBlob(data)
	}
	var ids []disk.BlockID
	for id := old; id != disk.NilBlock; {
		t.chainGuard(len(ids) + 1)
		view := disk.MustView(t.dev, id)
		ids = append(ids, id)
		next := disk.BlockID(int64(le64(view)))
		t.dev.Release(id)
		id = next
	}
	capPerPage := t.blobCapacity()
	need := (len(data) + capPerPage - 1) / capPerPage
	if need == 0 {
		need = 1
	}
	for len(ids) < need {
		ids = append(ids, t.dev.Alloc())
	}
	for len(ids) > need {
		disk.MustFreeAt(t.dev, ids[len(ids)-1])
		ids = ids[:len(ids)-1]
	}
	for i := 0; i < need; i++ {
		lo := i * capPerPage
		hi := lo + capPerPage
		if hi > len(data) {
			hi = len(data)
		}
		chunk := data[lo:hi]
		page := t.wpage()
		var next disk.BlockID = disk.NilBlock
		if i+1 < need {
			next = ids[i+1]
		}
		putLE64(page, uint64(int64(next)))
		page[8] = byte(len(chunk))
		page[9] = byte(len(chunk) >> 8)
		copy(page[blobHeader:], chunk)
		disk.MustWriteAt(t.dev, ids[i], page)
	}
	return ids[0]
}

// --- little-endian helpers ---------------------------------------------------

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// --- control information -----------------------------------------------------

// metaCtrl is the control information of a 3-sided metablock.
type metaCtrl struct {
	count   int
	bb      bbox
	vblocks []chunkRef
	hblocks []chunkRef
	pst     epst // per-metablock 3-sided structure over the stored points

	children []childRef
	union    epst // 3-sided structure over the children's stored points
	tsl      tsInfo
	tsr      tsInfo
	upd      updInfo
	td       *tdInfo
}

type childRef struct {
	ctrl         disk.BlockID
	xlo, xhi     int64
	bb           bbox
	storedCount  int
	subtreeCount int64
}

type tsInfo struct {
	blocks  []chunkRef
	count   int
	bottomY int64
}

type updInfo struct {
	id    disk.BlockID
	count int
}

type tdInfo struct {
	entryBlocks []chunkRef
	count       int
	pst         epst
	upd         updInfo
}

type encoder struct{ b []byte }

func (e *encoder) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encoder) u16(v uint16) { e.b = append(e.b, byte(v), byte(v>>8)) }
func (e *encoder) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *encoder) u64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *encoder) i64(v int64) { e.u64(uint64(v)) }

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u8() uint8 {
	v := d.b[d.off]
	d.off++
	return v
}
func (d *decoder) u16() uint16 {
	v := uint16(d.b[d.off]) | uint16(d.b[d.off+1])<<8
	d.off += 2
	return v
}
func (d *decoder) u32() uint32 {
	v := le32(d.b[d.off:])
	d.off += 4
	return v
}
func (d *decoder) u64() uint64 {
	v := le64(d.b[d.off:])
	d.off += 8
	return v
}
func (d *decoder) i64() int64 { return int64(d.u64()) }

func encChunks(e *encoder, cs []chunkRef) {
	e.u16(uint16(len(cs)))
	for _, c := range cs {
		e.i64(int64(c.id))
		e.u16(uint16(c.n))
		e.i64(c.minX)
		e.i64(c.maxX)
		e.i64(c.minY)
		e.i64(c.maxY)
	}
}

func decChunks(d *decoder) []chunkRef {
	n := int(d.u16())
	cs := make([]chunkRef, n)
	for i := range cs {
		cs[i].id = disk.BlockID(d.i64())
		cs[i].n = int(d.u16())
		cs[i].minX = d.i64()
		cs[i].maxX = d.i64()
		cs[i].minY = d.i64()
		cs[i].maxY = d.i64()
	}
	return cs
}

func encBBox(e *encoder, b bbox) {
	if b.valid {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.i64(b.minX)
	e.i64(b.maxX)
	e.i64(b.minY)
	e.i64(b.maxY)
}

func decBBox(d *decoder) bbox {
	var b bbox
	b.valid = d.u8() == 1
	b.minX = d.i64()
	b.maxX = d.i64()
	b.minY = d.i64()
	b.maxY = d.i64()
	return b
}

func encEPST(e *encoder, p epst) {
	e.i64(int64(p.root))
	e.u32(uint32(p.n))
}

func decEPST(d *decoder) epst {
	return epst{root: disk.BlockID(d.i64()), n: int(d.u32())}
}

func encTS(e *encoder, ts tsInfo) {
	encChunks(e, ts.blocks)
	e.u32(uint32(ts.count))
	e.i64(ts.bottomY)
}

func decTS(d *decoder) tsInfo {
	var ts tsInfo
	ts.blocks = decChunks(d)
	ts.count = int(d.u32())
	ts.bottomY = d.i64()
	return ts
}

func (t *Tree) encodeCtrl(m *metaCtrl) []byte {
	e := &encoder{}
	e.u32(uint32(m.count))
	encBBox(e, m.bb)
	encChunks(e, m.vblocks)
	encChunks(e, m.hblocks)
	encEPST(e, m.pst)

	e.u16(uint16(len(m.children)))
	for _, c := range m.children {
		e.i64(int64(c.ctrl))
		e.i64(c.xlo)
		e.i64(c.xhi)
		encBBox(e, c.bb)
		e.u32(uint32(c.storedCount))
		e.i64(c.subtreeCount)
	}
	encEPST(e, m.union)
	encTS(e, m.tsl)
	encTS(e, m.tsr)

	e.i64(int64(m.upd.id))
	e.u16(uint16(m.upd.count))

	if m.td == nil {
		e.u8(0)
	} else {
		e.u8(1)
		encChunks(e, m.td.entryBlocks)
		e.u32(uint32(m.td.count))
		encEPST(e, m.td.pst)
		e.i64(int64(m.td.upd.id))
		e.u16(uint16(m.td.upd.count))
	}
	return e.b
}

func (t *Tree) decodeCtrl(data []byte) *metaCtrl {
	d := &decoder{b: data}
	m := &metaCtrl{}
	m.count = int(d.u32())
	m.bb = decBBox(d)
	m.vblocks = decChunks(d)
	m.hblocks = decChunks(d)
	m.pst = decEPST(d)

	nc := int(d.u16())
	m.children = make([]childRef, nc)
	for i := range m.children {
		m.children[i].ctrl = disk.BlockID(d.i64())
		m.children[i].xlo = d.i64()
		m.children[i].xhi = d.i64()
		m.children[i].bb = decBBox(d)
		m.children[i].storedCount = int(d.u32())
		m.children[i].subtreeCount = d.i64()
	}
	m.union = decEPST(d)
	m.tsl = decTS(d)
	m.tsr = decTS(d)

	m.upd.id = disk.BlockID(d.i64())
	m.upd.count = int(d.u16())

	if d.u8() == 1 {
		m.td = &tdInfo{}
		m.td.entryBlocks = decChunks(d)
		m.td.count = int(d.u32())
		m.td.pst = decEPST(d)
		m.td.upd.id = disk.BlockID(d.i64())
		m.td.upd.count = int(d.u16())
	}
	return m
}

// loadCtrl reads and decodes a control blob into fresh allocations; mutate
// paths use it. Query paths use loadCtrlFrame with a recycled frame.
func (t *Tree) loadCtrl(id disk.BlockID) *metaCtrl {
	return t.decodeCtrl(t.readBlob(id))
}

// ctrlFrame is a recyclable decode target for query-path metablock loads,
// plus the per-node child-classification scratch; see the diagonal tree's
// ctrlFrame for the reasoning. Valid only between getFrame and putFrame.
type ctrlFrame struct {
	m    metaCtrl
	td   tdInfo
	blob []byte

	classes []class3
	direct  []bool
}

func (t *Tree) getFrame() *ctrlFrame {
	if f, ok := t.frames.Get().(*ctrlFrame); ok {
		return f
	}
	return &ctrlFrame{}
}

func (t *Tree) putFrame(f *ctrlFrame) { t.frames.Put(f) }

// loadCtrlFrame reads and decodes a control blob into f, reusing every
// slice capacity the frame owns. I/O cost is identical to loadCtrl.
func (t *Tree) loadCtrlFrame(id disk.BlockID, f *ctrlFrame) *metaCtrl {
	f.blob = t.appendBlob(f.blob[:0], id)
	t.decodeCtrlInto(f.blob, f)
	return &f.m
}

func decChunksInto(d *decoder, dst []chunkRef) []chunkRef {
	n := int(d.u16())
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]chunkRef, n)
	}
	for i := range dst {
		dst[i].id = disk.BlockID(d.i64())
		dst[i].n = int(d.u16())
		dst[i].minX = d.i64()
		dst[i].maxX = d.i64()
		dst[i].minY = d.i64()
		dst[i].maxY = d.i64()
	}
	return dst
}

func decTSInto(d *decoder, ts *tsInfo) {
	ts.blocks = decChunksInto(d, ts.blocks)
	ts.count = int(d.u32())
	ts.bottomY = d.i64()
}

// decodeCtrlInto is decodeCtrl decoding into a reusable frame.
func (t *Tree) decodeCtrlInto(data []byte, f *ctrlFrame) {
	d := &decoder{b: data}
	m := &f.m
	m.count = int(d.u32())
	m.bb = decBBox(d)
	m.vblocks = decChunksInto(d, m.vblocks)
	m.hblocks = decChunksInto(d, m.hblocks)
	m.pst = decEPST(d)

	nc := int(d.u16())
	if cap(m.children) >= nc {
		m.children = m.children[:nc]
	} else {
		m.children = make([]childRef, nc)
	}
	for i := range m.children {
		m.children[i].ctrl = disk.BlockID(d.i64())
		m.children[i].xlo = d.i64()
		m.children[i].xhi = d.i64()
		m.children[i].bb = decBBox(d)
		m.children[i].storedCount = int(d.u32())
		m.children[i].subtreeCount = d.i64()
	}
	m.union = decEPST(d)
	decTSInto(d, &m.tsl)
	decTSInto(d, &m.tsr)

	m.upd.id = disk.BlockID(d.i64())
	m.upd.count = int(d.u16())

	if d.u8() == 1 {
		f.td.entryBlocks = decChunksInto(d, f.td.entryBlocks)
		f.td.count = int(d.u32())
		f.td.pst = decEPST(d)
		f.td.upd.id = disk.BlockID(d.i64())
		f.td.upd.count = int(d.u16())
		m.td = &f.td
	} else {
		m.td = nil
	}
}

func (t *Tree) storeCtrl(id disk.BlockID, m *metaCtrl) disk.BlockID {
	return t.rewriteBlob(id, t.encodeCtrl(m))
}

func (t *Tree) updRecs(u updInfo) []rec {
	if u.id == disk.NilBlock || u.count == 0 {
		return nil
	}
	return t.readRecBlock(u.id)
}

// scanUpd streams an update block's buffered records without allocating
// (no I/O when the block is absent or empty, exactly like updRecs).
func (t *Tree) scanUpd(u updInfo, fn func(rec) bool) bool {
	if u.id == disk.NilBlock || u.count == 0 {
		return true
	}
	return t.scanRecs(u.id, fn)
}

func (t *Tree) updPoints(u updInfo) []geom.Point {
	rs := t.updRecs(u)
	pts := make([]geom.Point, len(rs))
	for i, r := range rs {
		pts[i] = r.pt
	}
	return pts
}

var _ = fmt.Sprintf
