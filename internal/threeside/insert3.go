package threeside

import (
	"sort"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Semi-dynamic insertion (Lemma 4.4): the ladder of Section 3.2 with the
// 3-sided organisations in place of the corner structures. Level-I
// reorganisations rebuild a metablock's vertical, horizontal and 3-sided
// organisations; the TD structure is a 3-sided structure; TS
// reorganisations rebuild both TS structures of every child plus the
// child-union 3-sided structure.

type step struct {
	id   disk.BlockID
	slot int
}

// Insert adds p to the tree. Amortized O(log_B n + (log_B n)^2/B) I/Os.
func (t *Tree) Insert(p geom.Point) {
	t.n++
	t.mult[p]++

	var path []step
	cur := t.root
	for {
		m := t.loadCtrl(cur)
		if len(m.children) == 0 || m.count == 0 || p.Y >= m.bb.minY {
			break
		}
		slot := chooseChild(m.children, p.X)
		c := &m.children[slot]
		if p.X < c.xlo {
			c.xlo = p.X
		}
		if p.X > c.xhi {
			c.xhi = p.X
		}
		c.subtreeCount++
		t.storeCtrl(cur, m)
		path = append(path, step{id: cur, slot: slot})
		cur = c.ctrl
	}
	target := cur

	{
		m := t.loadCtrl(target)
		t.appendUpd(&m.upd, rec{pt: p})
		t.storeCtrl(target, m)
	}

	if len(path) > 0 {
		par := path[len(path)-1]
		pm := t.loadCtrl(par.id)
		if pm.td == nil {
			pm.td = &tdInfo{}
		}
		t.appendUpd(&pm.td.upd, rec{pt: p, aux: tdAux(par.slot, true)})
		if pm.td.upd.count >= t.cfg.B {
			t.tdMergeUpd(pm)
		}
		t.storeCtrl(par.id, pm)
		if pm.td.count+pm.td.upd.count >= t.cap2() {
			t.tsReorgChildren(par.id, path[:len(path)-1])
			return
		}
	}

	m := t.loadCtrl(target)
	if m.upd.count >= t.cfg.B {
		t.levelI(target, path)
	}
}

func chooseChild(children []childRef, x int64) int {
	idx := 0
	for i := range children {
		if children[i].xlo <= x {
			idx = i
		} else {
			break
		}
	}
	return idx
}

func (t *Tree) appendUpd(u *updInfo, r rec) {
	if u.id == disk.NilBlock {
		u.id = t.dev.Alloc()
		t.putRecBlock(u.id, []rec{r})
		u.count = 1
		return
	}
	rs := t.readRecBlock(u.id)
	rs = rs[:u.count]
	rs = append(rs, r)
	t.putRecBlock(u.id, rs)
	u.count = len(rs)
}

func (t *Tree) clearUpd(u *updInfo) {
	if u.id != disk.NilBlock {
		t.putRecBlock(u.id, nil)
	}
	u.count = 0
}

func (t *Tree) readStoredPoints(m *metaCtrl) []geom.Point {
	var pts []geom.Point
	for _, hb := range m.hblocks {
		pts = append(pts, t.readPoints(hb.id)...)
	}
	return pts
}

func (t *Tree) levelI(id disk.BlockID, path []step) {
	m := t.loadCtrl(id)
	merged := t.updPoints(m.upd)
	if len(merged) == 0 {
		return
	}
	stored := append(t.readStoredPoints(m), merged...)
	t.freeStoredOrgs(m)
	t.fillStoredOrgs(m, stored)
	t.clearUpd(&m.upd)
	t.storeCtrl(id, m)

	if len(path) > 0 {
		par := path[len(path)-1]
		pm := t.loadCtrl(par.id)
		if i := findChild(pm, id); i >= 0 {
			pm.children[i].bb = m.bb
			pm.children[i].storedCount = m.count
			t.tdMergeUpd(pm)
			t.tdFlipInU(pm, i, merged)
		}
		t.storeCtrl(par.id, pm)
	}

	if m.count >= 2*t.cap2() {
		t.levelII(id, path)
	}
}

func findChild(pm *metaCtrl, id disk.BlockID) int {
	for i := range pm.children {
		if pm.children[i].ctrl == id {
			return i
		}
	}
	return -1
}

func (t *Tree) readTDEntries(pm *metaCtrl) []rec {
	var out []rec
	if pm.td == nil {
		return nil
	}
	for _, c := range pm.td.entryBlocks {
		out = append(out, t.readRecBlock(c.id)...)
	}
	return out
}

func (t *Tree) tdMergeUpd(pm *metaCtrl) {
	td := pm.td
	if td == nil || td.upd.count == 0 {
		return
	}
	entries := t.readTDEntries(pm)
	entries = append(entries, t.updRecs(td.upd)...)
	t.freeChunks(td.entryBlocks)
	td.entryBlocks = t.writeRecChunks(entries)
	td.count = len(entries)
	t.freeEPST(td.pst)
	td.pst = t.buildEPST(entries)
	t.clearUpd(&td.upd)
}

func (t *Tree) tdFlipInU(pm *metaCtrl, slot int, pts []geom.Point) {
	td := pm.td
	if td == nil || td.count == 0 {
		return
	}
	want := make(map[geom.Point]int, len(pts))
	for _, p := range pts {
		want[p]++
	}
	entries := t.readTDEntries(pm)
	changed := false
	for i := range entries {
		r := &entries[i]
		if tdInU(r.aux) && tdSlot(r.aux) == slot && want[r.pt] > 0 {
			want[r.pt]--
			r.aux = tdAux(slot, false)
			changed = true
		}
	}
	if !changed {
		return
	}
	t.freeChunks(td.entryBlocks)
	td.entryBlocks = t.writeRecChunks(entries)
	t.freeEPST(td.pst)
	td.pst = t.buildEPST(entries)
}

func (t *Tree) discardTD(pm *metaCtrl) {
	td := pm.td
	if td == nil {
		return
	}
	t.freeChunks(td.entryBlocks)
	t.freeEPST(td.pst)
	if td.upd.id != disk.NilBlock {
		disk.MustFreeAt(t.dev, td.upd.id)
	}
	pm.td = &tdInfo{}
}

// tsReorgChildren flushes every child's update block, rebuilds both TS
// structures of every child and the child-union 3-sided structure, and
// discards the TD structure. Cost O(B^2).
func (t *Tree) tsReorgChildren(id disk.BlockID, path []step) {
	m := t.loadCtrl(id)
	if len(m.children) == 0 {
		return
	}
	t.discardTD(m)
	cap2 := t.cap2()
	n := len(m.children)
	childStored := make([][]geom.Point, n)
	var overflow []disk.BlockID
	ctrls := make([]*metaCtrl, n)
	for i := range m.children {
		c := &m.children[i]
		cm := t.loadCtrl(c.ctrl)
		if cm.upd.count > 0 {
			stored := append(t.readStoredPoints(cm), t.updPoints(cm.upd)...)
			t.freeStoredOrgs(cm)
			t.fillStoredOrgs(cm, stored)
			t.clearUpd(&cm.upd)
			childStored[i] = stored
		} else {
			childStored[i] = t.readStoredPoints(cm)
		}
		ctrls[i] = cm
		c.bb = cm.bb
		c.storedCount = cm.count
		if cm.count >= 2*cap2 {
			overflow = append(overflow, c.ctrl)
		}
	}
	// TS structures in both directions.
	var pool []geom.Point
	for i := 0; i < n; i++ {
		t.freeChunks(ctrls[i].tsl.blocks)
		ctrls[i].tsl = t.writeTS(pool)
		pool = topYPool(append(pool, childStored[i]...), cap2)
	}
	pool = nil
	for i := n - 1; i >= 0; i-- {
		t.freeChunks(ctrls[i].tsr.blocks)
		ctrls[i].tsr = t.writeTS(pool)
		pool = topYPool(append(pool, childStored[i]...), cap2)
	}
	for i := range m.children {
		t.storeCtrl(m.children[i].ctrl, ctrls[i])
	}
	// Child-union structure.
	t.freeEPST(m.union)
	var rs []rec
	for slot, stored := range childStored {
		for _, p := range stored {
			rs = append(rs, rec{pt: p, aux: tdAux(slot, false)})
		}
	}
	m.union = t.buildEPST(rs)
	t.storeCtrl(id, m)

	selfPath := append(append([]step(nil), path...), step{id: id})
	for _, childID := range overflow {
		pm := t.loadCtrl(id)
		i := findChild(pm, childID)
		if i < 0 {
			continue
		}
		cm := t.loadCtrl(childID)
		if cm.count >= 2*cap2 {
			selfPath[len(selfPath)-1].slot = i
			t.levelII(childID, selfPath)
		}
	}
}

func (t *Tree) levelII(id disk.BlockID, path []step) {
	m := t.loadCtrl(id)
	if m.upd.count != 0 {
		t.levelI(id, path)
		m = t.loadCtrl(id)
		if m.count < 2*t.cap2() {
			return
		}
	}
	if len(m.children) == 0 {
		t.splitLeaf(id, path)
		return
	}

	cap2 := t.cap2()
	stored := t.readStoredPoints(m)
	geom.SortByYDesc(stored)
	top := stored[:cap2]
	bottom := stored[cap2:]
	t.freeStoredOrgs(m)
	t.fillStoredOrgs(m, top)

	groups := make(map[int][]geom.Point)
	for _, p := range bottom {
		slot := chooseChild(m.children, p.X)
		c := &m.children[slot]
		if p.X < c.xlo {
			c.xlo = p.X
		}
		if p.X > c.xhi {
			c.xhi = p.X
		}
		groups[slot] = append(groups[slot], p)
	}
	var slots []int
	for s := range groups {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	for _, s := range slots {
		c := &m.children[s]
		cm := t.loadCtrl(c.ctrl)
		merged := append(t.readStoredPoints(cm), groups[s]...)
		t.freeStoredOrgs(cm)
		t.fillStoredOrgs(cm, merged)
		t.storeCtrl(c.ctrl, cm)
		c.bb = cm.bb
		c.storedCount = cm.count
		c.subtreeCount += int64(len(groups[s]))
	}
	t.storeCtrl(id, m)

	t.tsReorgChildren(id, path)
	if len(path) > 0 {
		par := path[len(path)-1]
		pm := t.loadCtrl(par.id)
		if i := findChild(pm, id); i >= 0 {
			pm.children[i].bb = m.bb
			pm.children[i].storedCount = m.count
		}
		t.storeCtrl(par.id, pm)
		t.tsReorgChildren(par.id, path[:len(path)-1])
	}
}

func (t *Tree) splitLeaf(id disk.BlockID, path []step) {
	if len(path) == 0 {
		t.rebuildSubtree(id, nil)
		return
	}

	m := t.loadCtrl(id)
	pts := t.readStoredPoints(m)
	geom.SortByX(pts)

	half := len(pts) / 2
	left := t.buildMeta(pts[:half])
	right := t.buildMeta(pts[half:])

	par := path[len(path)-1]
	pm := t.loadCtrl(par.id)
	idx := findChild(pm, id)
	if idx < 0 {
		panic("threeside: split leaf not found in parent")
	}
	t.freeMetablock(id, m)
	newRefs := []childRef{
		{ctrl: left.ctrl, xlo: left.xlo, xhi: left.xhi, bb: left.bb,
			storedCount: left.storedCount, subtreeCount: left.subtreeCount},
		{ctrl: right.ctrl, xlo: right.xlo, xhi: right.xhi, bb: right.bb,
			storedCount: right.storedCount, subtreeCount: right.subtreeCount},
	}
	pm.children = append(pm.children[:idx], append(newRefs, pm.children[idx+1:]...)...)
	t.storeCtrl(par.id, pm)

	t.tsReorgChildren(par.id, path[:len(path)-1])

	pm = t.loadCtrl(par.id)
	if len(pm.children) >= 2*t.cfg.B {
		t.rebuildSubtree(par.id, path[:len(path)-1])
	}
}

// rebuildSubtree rebuilds the whole subtree rooted at id from its points,
// storing the new root's control information into the SAME block id.
//
// The maintenance cascade is re-entrant: tsReorgChildren's overflow loop
// runs levelII on children, whose leaf splits check the fanout of the very
// node whose loop is still on the stack. A node that enclosing frames may
// still reference must therefore never change identity. The old code split
// an overfull node into two fresh nodes and freed the original, so an
// enclosing frame's id could be freed, reallocated to an unrelated block,
// and reinterpreted as a control blob — whose next-pointer chain could then
// cycle, hanging readBlob (the nondeterministic test hang this replaces).
// Rebuilding in place keeps every ancestor id valid; stale CHILD ids left
// in enclosing overflow lists are handled by the findChild guards.
func (t *Tree) rebuildSubtree(id disk.BlockID, path []step) {
	t.rebuildInPlace(id, t.collectSubtree(id), path)
}

// rebuildInPlace is the body of rebuildSubtree with the point set supplied
// by the caller: the insert cascade passes the subtree's physical points
// verbatim, while the weak-delete global rebuild (delete3.go) passes the
// subtree's points with tombstoned copies filtered out.
func (t *Tree) rebuildInPlace(id disk.BlockID, pts []geom.Point, path []step) {
	geom.SortByX(pts)

	m := t.loadCtrl(id)
	for _, c := range m.children {
		t.freeSubtree(c.ctrl)
	}
	t.freeMetablockContents(m)

	ref := t.buildMeta(pts)
	nm := t.loadCtrl(ref.ctrl)
	t.freeBlob(ref.ctrl)
	t.storeCtrl(id, nm)

	// The parent's child-union, TD and sibling TS structures reference the
	// node's old stored set; rebuild them (this also refreshes the parent's
	// bookkeeping for id). The parent's fanout is unchanged, so no further
	// cascade is needed.
	if len(path) > 0 {
		t.tsReorgChildren(path[len(path)-1].id, path[:len(path)-1])
	}
}

func (t *Tree) collectSubtree(id disk.BlockID) []geom.Point {
	m := t.loadCtrl(id)
	pts := t.readStoredPoints(m)
	pts = append(pts, t.updPoints(m.upd)...)
	for _, c := range m.children {
		pts = append(pts, t.collectSubtree(c.ctrl)...)
	}
	return pts
}

// freeMetablockContents releases every block a metablock owns except its
// control blob, so rebuildSubtree can reuse the blob head in place.
func (t *Tree) freeMetablockContents(m *metaCtrl) {
	t.freeStoredOrgs(m)
	t.freeChunks(m.tsl.blocks)
	t.freeChunks(m.tsr.blocks)
	t.freeEPST(m.union)
	if m.upd.id != disk.NilBlock {
		disk.MustFreeAt(t.dev, m.upd.id)
	}
	if m.td != nil {
		t.freeChunks(m.td.entryBlocks)
		t.freeEPST(m.td.pst)
		if m.td.upd.id != disk.NilBlock {
			disk.MustFreeAt(t.dev, m.td.upd.id)
		}
	}
}

func (t *Tree) freeMetablock(id disk.BlockID, m *metaCtrl) {
	t.freeMetablockContents(m)
	t.freeBlob(id)
}

func (t *Tree) freeSubtree(id disk.BlockID) {
	m := t.loadCtrl(id)
	for _, c := range m.children {
		t.freeSubtree(c.ctrl)
	}
	t.freeMetablock(id, m)
}
