package threeside

import (
	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Static construction: identical shape to the diagonal metablock tree
// (top B^2 points by y in each metablock, the rest partitioned by x into at
// most B groups), with the Section 4 additions — a per-metablock 3-sided
// structure, left and right TS structures per child, and a child-union
// 3-sided structure per internal metablock.

type buildResult struct {
	ctrl         disk.BlockID
	bb           bbox
	stored       []geom.Point
	storedCount  int
	subtreeCount int64
	xlo, xhi     int64
}

func (t *Tree) buildMeta(pts []geom.Point) buildResult {
	cap2 := t.cap2()
	m := &metaCtrl{}
	var stored, rest []geom.Point
	if len(pts) <= cap2 {
		stored = append([]geom.Point(nil), pts...)
	} else {
		byY := append([]geom.Point(nil), pts...)
		geom.SortByYDesc(byY)
		storedSet := make(map[geom.Point]int, cap2)
		for _, p := range byY[:cap2] {
			storedSet[p]++
		}
		stored = byY[:cap2:cap2]
		rest = make([]geom.Point, 0, len(pts)-cap2)
		for _, p := range pts {
			if storedSet[p] > 0 {
				storedSet[p]--
				continue
			}
			rest = append(rest, p)
		}
	}
	t.fillStoredOrgs(m, stored)

	if len(rest) > 0 {
		groups := (len(rest) + cap2 - 1) / cap2
		if groups > t.cfg.B {
			groups = t.cfg.B
		}
		per := (len(rest) + groups - 1) / groups
		var results []buildResult
		for i := 0; i < len(rest); i += per {
			j := i + per
			if j > len(rest) {
				j = len(rest)
			}
			results = append(results, t.buildMeta(rest[i:j]))
		}
		for _, r := range results {
			m.children = append(m.children, childRef{
				ctrl: r.ctrl, xlo: r.xlo, xhi: r.xhi, bb: r.bb,
				storedCount: r.storedCount, subtreeCount: r.subtreeCount,
			})
		}
		t.rebuildChildTS(m, results)
		t.rebuildUnion(m, results)
		m.td = &tdInfo{}
	}

	ctrl := t.storeCtrl(disk.NilBlock, m)
	var xlo, xhi int64
	if len(pts) > 0 {
		xlo, xhi = pts[0].X, pts[len(pts)-1].X
	}
	return buildResult{
		ctrl: ctrl, bb: m.bb, stored: stored,
		storedCount: len(stored), subtreeCount: int64(len(pts)),
		xlo: xlo, xhi: xhi,
	}
}

func (t *Tree) fillStoredOrgs(m *metaCtrl, stored []geom.Point) {
	m.count = len(stored)
	m.bb = bboxOf(stored)

	byX := append([]geom.Point(nil), stored...)
	geom.SortByX(byX)
	m.vblocks = t.writePointChunks(byX)

	byY := append([]geom.Point(nil), stored...)
	geom.SortByYDesc(byY)
	m.hblocks = t.writePointChunks(byY)

	rs := make([]rec, len(stored))
	for i, p := range stored {
		rs[i] = rec{pt: p}
	}
	m.pst = t.buildEPST(rs)
}

func (t *Tree) freeStoredOrgs(m *metaCtrl) {
	t.freeChunks(m.vblocks)
	t.freeChunks(m.hblocks)
	t.freeEPST(m.pst)
	m.vblocks, m.hblocks, m.pst = nil, nil, epst{}
}

// rebuildChildTS writes both TS structures of every freshly built child:
// TSL(child i) covers children 0..i-1, TSR(child i) covers i+1..end.
func (t *Tree) rebuildChildTS(m *metaCtrl, results []buildResult) {
	cap2 := t.cap2()
	n := len(results)
	var pool []geom.Point
	tsls := make([]tsInfo, n)
	for i := 0; i < n; i++ {
		tsls[i] = t.writeTS(pool)
		pool = topYPool(append(pool, results[i].stored...), cap2)
	}
	pool = nil
	tsrs := make([]tsInfo, n)
	for i := n - 1; i >= 0; i-- {
		tsrs[i] = t.writeTS(pool)
		pool = topYPool(append(pool, results[i].stored...), cap2)
	}
	for i, r := range results {
		cm := t.loadCtrl(r.ctrl)
		t.freeChunks(cm.tsl.blocks)
		t.freeChunks(cm.tsr.blocks)
		cm.tsl = tsls[i]
		cm.tsr = tsrs[i]
		t.storeCtrl(r.ctrl, cm)
	}
}

// rebuildUnion builds the child-union 3-sided structure of m, with each
// record tagged by its child slot so queries can filter by slot.
func (t *Tree) rebuildUnion(m *metaCtrl, results []buildResult) {
	var rs []rec
	for slot, r := range results {
		for _, p := range r.stored {
			rs = append(rs, rec{pt: p, aux: tdAux(slot, false)})
		}
	}
	m.union = t.buildEPST(rs)
}

func (t *Tree) writeTS(pool []geom.Point) tsInfo {
	if len(pool) == 0 {
		return tsInfo{}
	}
	byY := append([]geom.Point(nil), pool...)
	geom.SortByYDesc(byY)
	return tsInfo{
		blocks:  t.writePointChunks(byY),
		count:   len(byY),
		bottomY: byY[len(byY)-1].Y,
	}
}

func topYPool(pts []geom.Point, k int) []geom.Point {
	if len(pts) <= k {
		return pts
	}
	geom.SortByYDesc(pts)
	return append([]geom.Point(nil), pts[:k]...)
}
