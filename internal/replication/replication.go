// Package replication defines the wire protocol shared by the three sides
// of the replicated read path: the primary's serving front-end (which
// exposes a snapshot + logical-WAL stream), the replica (which hydrates
// from the snapshot and tails the stream), and the read router (which
// spreads queries across replicas and must be able to tell a fresh answer
// from a stale one).
//
// # Protocol
//
// A primary assigns every acknowledged mutation a dense logical LSN
// (1-based, never reset for the life of the server process) and retains a
// bounded tail of the mutation log in memory. Its identity is an EPOCH: a
// random token minted at server start. The pair (epoch, lsn) names a
// unique prefix of the primary's mutation history:
//
//   - GET /v1/snapshot streams a tar of the checkpoint directory taken
//     under the mutation lock, preceded by a SNAPMETA.json entry recording
//     the (epoch, lsn, checkpoint seq) the image corresponds to;
//   - GET /v1/wal?from=N returns the retained ops with LSN >= N plus the
//     current head, or 410 Gone when N has been evicted from the bounded
//     log (the replica must re-hydrate from a fresh snapshot);
//   - GET /readyz returns a Status document; every /v1 response carries
//     the answering node's epoch and applied LSN in response headers.
//
// A crash or restart of the primary mints a new epoch, so a replica (or
// router) can never confuse two mutation histories: LSNs are comparable
// only within one epoch, and the router rejects any answer stamped with an
// epoch other than the cluster's adopted one.
package replication

import "time"

// Response headers stamped on every /v1 response, the router's
// wrong-answer guard: an answer is acceptable only if its epoch matches
// the cluster's and its LSN is not behind the router's watermark by more
// than the configured lag budget.
const (
	HeaderEpoch = "X-Ccidx-Epoch"
	HeaderLSN   = "X-Ccidx-Lsn"
)

// SnapshotMetaName is the tar entry carrying the SnapshotMeta document; it
// is always the archive's first entry.
const SnapshotMetaName = "SNAPMETA.json"

// Op is one logical mutation in the replication stream. Inserts carry the
// full interval; deletes carry only the id.
type Op struct {
	Del bool   `json:"del,omitempty"`
	Lo  int64  `json:"lo,omitempty"`
	Hi  int64  `json:"hi,omitempty"`
	ID  uint64 `json:"id"`
}

// WALResponse is the /v1/wal document: the retained ops from the requested
// LSN, plus the head so the replica can compute its lag even when the
// response is capped.
type WALResponse struct {
	Epoch string `json:"epoch"`
	From  uint64 `json:"from"` // LSN of Ops[0] (== request's from)
	Head  uint64 `json:"head"` // latest LSN acknowledged by the primary
	Ops   []Op   `json:"ops"`
}

// SnapshotMeta is the first tar entry of a /v1/snapshot stream: the
// (epoch, lsn, seq) coordinates of the shipped checkpoint image. A replica
// that applies the image and then tails /v1/wal?from=LSN+1 converges on
// the primary's state.
type SnapshotMeta struct {
	Epoch string `json:"epoch"`
	LSN   uint64 `json:"lsn"`
	Seq   uint64 `json:"seq"`
}

// Status is the /readyz readiness document. Liveness (/healthz) answers
// "is the process up"; readiness answers "should a router send reads
// here": a replica that is still hydrating, has lost its primary's log
// position, or exceeds its lag bound reports Ready=false with the fields a
// router needs to decide what to do about it.
type Status struct {
	Ready  bool   `json:"ready"`
	Role   string `json:"role"`  // "primary" or "replica"
	Epoch  string `json:"epoch"` // mutation-history identity
	Gen    uint64 `json:"gen"`   // checkpoint generation (manifest seq)
	LSN    uint64 `json:"lsn"`   // last applied logical LSN
	Lag    int64  `json:"lag"`   // head - applied, in ops (0 on a primary)
	Detail string `json:"detail,omitempty"`
}

// ParseRetryAfter interprets a Retry-After header value as a delay,
// clamped to max (0 when absent or unparseable). Only the delta-seconds
// form is supported — it is what this repo's servers emit.
func ParseRetryAfter(v string, max time.Duration) time.Duration {
	if v == "" {
		return 0
	}
	var secs int64
	for _, c := range v {
		if c < '0' || c > '9' {
			return 0
		}
		secs = secs*10 + int64(c-'0')
		if secs > 1<<20 {
			break
		}
	}
	d := time.Duration(secs) * time.Second
	if d > max {
		return max
	}
	return d
}
