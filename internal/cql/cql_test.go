package cql

import (
	"math/big"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ccidx/internal/geom"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestSatisfiableBasics(t *testing.T) {
	cases := []struct {
		c    Conj
		want bool
	}{
		{NewConj(1, 0, VarConst(0, GE, rat(1, 1)), VarConst(0, LE, rat(2, 1))), true},
		{NewConj(1, 0, VarConst(0, GT, rat(2, 1)), VarConst(0, LT, rat(2, 1))), false},
		{NewConj(1, 0, VarConst(0, GE, rat(2, 1)), VarConst(0, LE, rat(2, 1))), true},
		{NewConj(1, 0, VarConst(0, GT, rat(2, 1)), VarConst(0, LE, rat(2, 1))), false},
		{NewConj(2, 0, VarVar(0, LT, 1), VarVar(1, LT, 0)), false},
		{NewConj(2, 0, VarVar(0, LE, 1), VarVar(1, LE, 0)), true}, // x = y
		{NewConj(3, 0, VarVar(0, LT, 1), VarVar(1, LT, 2), VarVar(2, LT, 0)), false},
		{NewConj(2, 0, VarVar(0, EQ, 1), VarConst(0, LT, rat(5, 1)), VarConst(1, GT, rat(5, 1))), false},
		{NewConj(2, 0, VarVar(0, EQ, 1), VarConst(0, LE, rat(5, 1)), VarConst(1, GE, rat(5, 1))), true},
		// Dense order: strict gap between bounds is satisfiable.
		{NewConj(1, 0, VarConst(0, GT, rat(1, 3)), VarConst(0, LT, rat(2, 3))), true},
	}
	for i, tc := range cases {
		if got := tc.c.Satisfiable(); got != tc.want {
			t.Errorf("case %d (%v): Satisfiable=%v, want %v", i, tc.c, got, tc.want)
		}
	}
}

func TestProjectTransitive(t *testing.T) {
	// x0 <= x1, x1 <= 3, x0 >= 1: projection of x0 is [1,3].
	c := NewConj(2, 0, VarVar(0, LE, 1), VarConst(1, LE, rat(3, 1)), VarConst(0, GE, rat(1, 1)))
	p := c.Project(0)
	if p.Empty || p.Lo.Cmp(rat(1, 1)) != 0 || p.Hi.Cmp(rat(3, 1)) != 0 || p.LoOpen || p.HiOpen {
		t.Fatalf("projection = %v", p)
	}
	// Strictness propagates: x0 < x1 <= 3 gives x0 < 3.
	c2 := NewConj(2, 0, VarVar(0, LT, 1), VarConst(1, LE, rat(3, 1)))
	p2 := c2.Project(0)
	if p2.Hi.Cmp(rat(3, 1)) != 0 || !p2.HiOpen {
		t.Fatalf("strict projection = %v", p2)
	}
}

func TestProjectUnbounded(t *testing.T) {
	c := NewConj(2, 0, VarConst(0, GE, rat(0, 1)))
	p := c.Project(1)
	if p.Lo != nil || p.Hi != nil || p.Empty {
		t.Fatalf("unconstrained projection = %v", p)
	}
}

func TestEliminatePreservesProjection(t *testing.T) {
	// Eliminating y from (x <= y ∧ y <= 5) must leave x <= 5.
	c := NewConj(2, 0, VarVar(0, LE, 1), VarConst(1, LE, rat(5, 1)))
	e := c.Eliminate(1)
	for _, a := range e.Atoms {
		if a.Var == 1 || (a.IsVar && a.RVar == 1) {
			t.Fatalf("eliminated variable still mentioned: %v", a)
		}
	}
	p := e.Project(0)
	if p.Hi == nil || p.Hi.Cmp(rat(5, 1)) != 0 {
		t.Fatalf("after elimination projection = %v", p)
	}
}

func TestEliminateUnsatStaysUnsat(t *testing.T) {
	c := NewConj(2, 0, VarVar(0, LT, 1), VarVar(1, LT, 0))
	if e := c.Eliminate(1); e.Satisfiable() {
		t.Fatal("eliminating from an unsatisfiable tuple produced a satisfiable one")
	}
}

func TestEvaluate(t *testing.T) {
	c := NewConj(2, 0, VarVar(0, LT, 1), VarConst(0, GE, rat(0, 1)))
	if !c.Evaluate([]*big.Rat{rat(1, 2), rat(3, 4)}) {
		t.Fatal("satisfying assignment rejected")
	}
	if c.Evaluate([]*big.Rat{rat(3, 4), rat(1, 2)}) {
		t.Fatal("violating assignment accepted")
	}
}

// Property: Project agrees with sampling Evaluate on the projected
// variable (solutions found by evaluation always fall in the projection).
func TestProjectSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arity := 2 + rng.Intn(3)
		var atoms []Atom
		for i := 0; i < rng.Intn(6); i++ {
			v := rng.Intn(arity)
			op := Op(rng.Intn(5))
			if rng.Intn(2) == 0 {
				atoms = append(atoms, VarConst(v, op, rat(int64(rng.Intn(21)-10), 1)))
			} else {
				atoms = append(atoms, VarVar(v, op, rng.Intn(arity)))
			}
		}
		c := NewConj(arity, 0, atoms...)
		p := c.Project(0)
		// Sample assignments; any satisfying one must have x0 in p.
		for trial := 0; trial < 60; trial++ {
			asg := make([]*big.Rat, arity)
			for i := range asg {
				asg[i] = rat(int64(rng.Intn(41)-20), 2)
			}
			if !c.Evaluate(asg) {
				continue
			}
			if p.Empty {
				return false
			}
			x := asg[0]
			if p.Lo != nil {
				if cmp := x.Cmp(p.Lo); cmp < 0 || (cmp == 0 && p.LoOpen) {
					return false
				}
			}
			if p.Hi != nil {
				if cmp := x.Cmp(p.Hi); cmp > 0 || (cmp == 0 && p.HiOpen) {
					return false
				}
			}
		}
		return true
	}
	// Fixed-seed Rand keeps the property deterministic (testing/quick
	// defaults to a time-seeded generator).
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(73))}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestKeyOfMonotoneProperty(t *testing.T) {
	f := func(a, b int64, da, db uint32) bool {
		ra := rat(a, int64(da%1000+1))
		rb := rat(b, int64(db%1000+1))
		ka := KeyOf(ra, false)
		kb := KeyOf(rb, false)
		if ra.Cmp(rb) < 0 {
			return ka <= kb
		}
		if ra.Cmp(rb) > 0 {
			return ka >= kb
		}
		return ka == kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyOfOutwardRounding(t *testing.T) {
	// 1/3 is inexact in float64: rounding must widen.
	third := rat(1, 3)
	if !(KeyOf(third, false) < KeyOf(third, true)) {
		t.Fatal("outward rounding did not widen an inexact endpoint")
	}
	// Exact values stay put.
	half := rat(1, 2)
	if KeyOf(half, false) != KeyOf(half, true) {
		t.Fatal("exact endpoint moved")
	}
}

func TestGeneralizedIndexSelect(t *testing.T) {
	rel := NewRelation(2)
	// Tuples: x in [i, i+10] for i = 0,10,20,...,90; y unconstrained.
	for i := int64(0); i < 10; i++ {
		rel.Add(NewConj(2, uint64(i),
			VarConst(0, GE, rat(i*10, 1)),
			VarConst(0, LE, rat(i*10+10, 1))))
	}
	idx := NewGeneralizedIndex(rel, 0, Config{B: 4})
	got := idx.Select(rat(25, 1), rat(35, 1))
	// Intersecting projections: [20,30] and [30,40].
	var ids []uint64
	for _, c := range got.Conjs {
		ids = append(ids, c.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("selected ids %v, want [2 3]", ids)
	}
	// The result tuples carry the conjoined range constraint.
	for _, c := range got.Conjs {
		p := c.Project(0)
		if p.Lo.Cmp(rat(25, 1)) < 0 || p.Hi.Cmp(rat(35, 1)) > 0 {
			t.Fatalf("result projection %v escapes the query range", p)
		}
	}
}

func TestGeneralizedIndexStabRationalEndpoints(t *testing.T) {
	rel := NewRelation(1)
	rel.Add(NewConj(1, 1, VarConst(0, GE, rat(1, 3)), VarConst(0, LE, rat(2, 3))))
	rel.Add(NewConj(1, 2, VarConst(0, GT, rat(2, 3)), VarConst(0, LT, rat(1, 1))))
	idx := NewGeneralizedIndex(rel, 0, Config{B: 4})
	if got := idx.Stab(rat(1, 2)); got.Len() != 1 || got.Conjs[0].ID != 1 {
		t.Fatalf("stab 1/2: %v", got.Conjs)
	}
	// 2/3 belongs to tuple 1 only (tuple 2 is open at 2/3); the index may
	// produce tuple 2 as a candidate, the exact refinement must drop it.
	if got := idx.Stab(rat(2, 3)); got.Len() != 1 || got.Conjs[0].ID != 1 {
		t.Fatalf("stab 2/3: %d tuples", got.Len())
	}
}

func TestGeneralizedIndexInsert(t *testing.T) {
	rel := NewRelation(1)
	idx := NewGeneralizedIndex(rel, 0, Config{B: 4})
	for i := int64(0); i < 50; i++ {
		idx.Insert(NewConj(1, uint64(i), VarConst(0, GE, rat(i, 1)), VarConst(0, LE, rat(i+5, 1))))
	}
	if idx.Len() != 50 {
		t.Fatalf("Len=%d", idx.Len())
	}
	got := idx.Stab(rat(10, 1))
	if got.Len() != 6 { // tuples 5..10 contain 10
		t.Fatalf("stab 10 returned %d tuples, want 6", got.Len())
	}
}

func TestRectangleIntersectionMatchesGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rects := make([]geom.Rect, 60)
	for i := range rects {
		x1 := rng.Int63n(100)
		y1 := rng.Int63n(100)
		rects[i] = geom.Rect{
			Name: uint64(i + 1),
			X1:   x1, Y1: y1,
			X2: x1 + rng.Int63n(30), Y2: y1 + rng.Int63n(30),
		}
	}
	pairs := IntersectingPairs(rects, Config{B: 4})
	gotSet := map[[2]uint64]bool{}
	for _, p := range pairs {
		if gotSet[p] {
			t.Fatalf("pair %v reported twice", p)
		}
		gotSet[p] = true
	}
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			want := rects[i].Intersects(rects[j])
			key := [2]uint64{rects[i].Name, rects[j].Name}
			if gotSet[key] != want {
				t.Fatalf("pair %v: got %v want %v", key, gotSet[key], want)
			}
		}
	}
}

func TestUnionAndSelect(t *testing.T) {
	a := NewRelation(1)
	a.Add(NewConj(1, 1, VarConst(0, LE, rat(0, 1))))
	b := NewRelation(1)
	b.Add(NewConj(1, 2, VarConst(0, GE, rat(10, 1))))
	u := a.Union(b)
	if u.Len() != 2 {
		t.Fatalf("union len %d", u.Len())
	}
	sel := u.Select(VarConst(0, GE, rat(5, 1)))
	if sel.Len() != 1 || sel.Conjs[0].ID != 2 {
		t.Fatalf("select kept %d tuples", sel.Len())
	}
}

func TestOpString(t *testing.T) {
	if LT.String() != "<" || GE.String() != ">=" {
		t.Fatal("op strings")
	}
	c := NewConj(2, 0, VarVar(0, LT, 1))
	if c.String() != "x0 < x1" {
		t.Fatalf("conj string %q", c.String())
	}
	if (Conj{Arity: 1}).String() != "true" {
		t.Fatal("empty conj string")
	}
}
