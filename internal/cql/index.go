package cql

import (
	"math"
	"math/big"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
)

// GeneralizedIndex is the generalized one-dimensional index of Section 2.1:
// every generalized tuple is represented by the projection of its
// constraint set onto one attribute — a single interval for convex CQLs —
// and one-dimensional searching on that attribute becomes external dynamic
// interval management (Proposition 2.2).
//
// Select(a1, a2) finds all tuples whose projection intersects [a1, a2] with
// O(log_B n + t/B) I/Os through the interval manager, then refines each
// candidate exactly: the returned relation is the input tuples conjoined
// with a1 <= x_attr <= a2, minus the unsatisfiable ones. Because endpoint
// keys are rounded outward, refinement can reject a candidate, but no
// answer is missed.
type GeneralizedIndex struct {
	attr  int
	arity int
	mgr   *intervals.Manager
	byID  map[uint64]Conj
}

// Config mirrors intervals.Config.
type Config = intervals.Config

// NewGeneralizedIndex indexes relation r on variable attr.
func NewGeneralizedIndex(r *Relation, attr int, cfg Config) *GeneralizedIndex {
	g := &GeneralizedIndex{
		attr:  attr,
		arity: r.Arity,
		byID:  make(map[uint64]Conj, len(r.Conjs)),
	}
	var ivs []geom.Interval
	for _, c := range r.Conjs {
		iv, ok := g.keyInterval(c)
		if !ok {
			continue
		}
		if _, dup := g.byID[c.ID]; dup {
			panic("cql: duplicate tuple id")
		}
		g.byID[c.ID] = c
		ivs = append(ivs, iv)
	}
	g.mgr = intervals.New(cfg, ivs)
	return g
}

// keyInterval computes the indexed key interval (outward-rounded) of a
// tuple; ok is false for unsatisfiable tuples.
func (g *GeneralizedIndex) keyInterval(c Conj) (geom.Interval, bool) {
	p := c.Project(g.attr)
	if p.Empty {
		return geom.Interval{}, false
	}
	lo := int64(math.MinInt64 + 1)
	hi := int64(math.MaxInt64 - 1)
	if p.Lo != nil {
		lo = KeyOf(p.Lo, false)
	}
	if p.Hi != nil {
		hi = KeyOf(p.Hi, true)
	}
	return geom.Interval{Lo: lo, Hi: hi, ID: c.ID}, true
}

// Insert adds a generalized tuple to the index (semi-dynamic, like the
// underlying metablock tree).
func (g *GeneralizedIndex) Insert(c Conj) {
	if c.Arity != g.arity {
		panic("cql: arity mismatch")
	}
	iv, ok := g.keyInterval(c)
	if !ok {
		return // unsatisfiable tuples denote the empty set
	}
	if _, dup := g.byID[c.ID]; dup {
		panic("cql: duplicate tuple id")
	}
	g.byID[c.ID] = c
	g.mgr.Insert(iv)
}

// Len returns the number of indexed tuples.
func (g *GeneralizedIndex) Len() int { return len(g.byID) }

// Select returns a generalized relation representing all tuples of the
// input whose attribute satisfies a1 <= x <= a2 (either bound may be nil
// for an open side), with the range constraint conjoined — exactly the
// operation (i) of Section 2.1.
func (g *GeneralizedIndex) Select(a1, a2 *big.Rat) *Relation {
	lo := int64(math.MinInt64 + 1)
	hi := int64(math.MaxInt64 - 1)
	var extra []Atom
	if a1 != nil {
		lo = KeyOf(a1, false)
		extra = append(extra, VarConst(g.attr, GE, a1))
	}
	if a2 != nil {
		hi = KeyOf(a2, true)
		extra = append(extra, VarConst(g.attr, LE, a2))
	}
	out := NewRelation(g.arity)
	g.mgr.Intersect(geom.Interval{Lo: lo, Hi: hi}, func(iv geom.Interval) bool {
		c := g.byID[iv.ID]
		cc := c.And(extra...)
		if cc.Satisfiable() {
			out.Add(cc)
		}
		return true
	})
	return out
}

// Stab returns the tuples whose projection contains the single value a,
// refined exactly.
func (g *GeneralizedIndex) Stab(a *big.Rat) *Relation {
	return g.Select(a, a)
}

// Stats exposes the I/O counters of the underlying interval manager.
func (g *GeneralizedIndex) Stats() disk.Stats { return g.mgr.Stats() }
