// Package cql implements the constraint query language layer of Section
// 2.1: generalized tuples and relations over the theory of rational order
// with constants, and the generalized one-dimensional index that reduces
// indexing constraints to external dynamic interval management
// (Proposition 2.2).
//
// A generalized k-tuple is a quantifier-free conjunction of order
// constraints (x op c, x op y with op in <, <=, =, >=, >) on k variables
// ranging over the rationals; a generalized relation is a finite set of
// such tuples (a DNF formula). For this convex CQL the projection of a
// tuple on any variable is a single interval, which is exactly what the
// generalized index stores (Section 2.1's "generalized key").
//
// All constraint reasoning is exact (math/big.Rat). The index layer maps
// rational endpoints to int64 keys through an order-preserving float64
// embedding with outward rounding, so the index may return false
// candidates — which the exact refinement step removes — but never misses
// an answer.
package cql

import (
	"fmt"
	"math"
	"math/big"
	"strings"
)

// Op is a comparison operator of the theory of rational order.
type Op int

// Operators. NE is intentionally absent: it would break convexity (the
// projection of a tuple would stop being one interval), and the paper's
// reduction assumes convex CQLs.
const (
	LT Op = iota
	LE
	EQ
	GE
	GT
)

func (o Op) String() string {
	switch o {
	case LT:
		return "<"
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	case GT:
		return ">"
	}
	return "?"
}

// Atom is a single constraint: Var op (other Var | Const).
type Atom struct {
	Var   int
	Op    Op
	IsVar bool
	RVar  int
	Const *big.Rat
}

func (a Atom) String() string {
	if a.IsVar {
		return fmt.Sprintf("x%d %v x%d", a.Var, a.Op, a.RVar)
	}
	return fmt.Sprintf("x%d %v %v", a.Var, a.Op, a.Const.RatString())
}

// VarConst builds the atom "x_v op c".
func VarConst(v int, op Op, c *big.Rat) Atom {
	return Atom{Var: v, Op: op, Const: new(big.Rat).Set(c)}
}

// VarVar builds the atom "x_v op x_w".
func VarVar(v int, op Op, w int) Atom {
	return Atom{Var: v, Op: op, IsVar: true, RVar: w}
}

// Between builds the two atoms lo <= x_v <= hi.
func Between(v int, lo, hi *big.Rat) []Atom {
	return []Atom{VarConst(v, GE, lo), VarConst(v, LE, hi)}
}

// EqConst builds x_v = c.
func EqConst(v int, c *big.Rat) Atom { return VarConst(v, EQ, c) }

// Conj is a generalized tuple: a conjunction of atoms over Arity variables,
// with an identifier used by the index layer.
type Conj struct {
	Arity int
	ID    uint64
	Atoms []Atom
}

// NewConj builds a generalized tuple.
func NewConj(arity int, id uint64, atoms ...Atom) Conj {
	for _, a := range atoms {
		if a.Var < 0 || a.Var >= arity || (a.IsVar && (a.RVar < 0 || a.RVar >= arity)) {
			panic("cql: atom variable out of range")
		}
	}
	return Conj{Arity: arity, ID: id, Atoms: atoms}
}

func (c Conj) String() string {
	parts := make([]string, len(c.Atoms))
	for i, a := range c.Atoms {
		parts[i] = a.String()
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " ∧ ")
}

// And returns the conjunction of c with more atoms.
func (c Conj) And(atoms ...Atom) Conj {
	out := Conj{Arity: c.Arity, ID: c.ID}
	out.Atoms = append(append([]Atom(nil), c.Atoms...), atoms...)
	return out
}

// bound is a one-sided constant bound.
type bound struct {
	val    *big.Rat // nil = unbounded
	strict bool
}

// tighterLower returns the tighter of two lower bounds.
func tighterLower(a, b bound) bound {
	if a.val == nil {
		return b
	}
	if b.val == nil {
		return a
	}
	switch a.val.Cmp(b.val) {
	case -1:
		return b
	case 1:
		return a
	}
	if b.strict {
		return b
	}
	return a
}

func tighterUpper(a, b bound) bound {
	if a.val == nil {
		return b
	}
	if b.val == nil {
		return a
	}
	switch a.val.Cmp(b.val) {
	case -1:
		return a
	case 1:
		return b
	}
	if b.strict {
		return b
	}
	return a
}

const (
	relNone = 0
	relLE   = 1
	relLT   = 2
)

// closure is the normal form of a conjunction: pairwise order relations
// (transitively closed) and per-variable constant bounds (propagated
// through the relations). Order theory admits quantifier elimination by
// dropping a variable from its closure, which is what Eliminate relies on.
type closure struct {
	k     int
	rel   [][]int // rel[i][j]: xi (<=|<) xj
	lower []bound
	upper []bound
	unsat bool
}

func (c Conj) close() *closure {
	cl := &closure{k: c.Arity}
	cl.rel = make([][]int, c.Arity)
	for i := range cl.rel {
		cl.rel[i] = make([]int, c.Arity)
	}
	cl.lower = make([]bound, c.Arity)
	cl.upper = make([]bound, c.Arity)
	addRel := func(i, j, r int) {
		if cl.rel[i][j] < r {
			cl.rel[i][j] = r
		}
	}
	for _, a := range c.Atoms {
		if a.IsVar {
			switch a.Op {
			case LT:
				addRel(a.Var, a.RVar, relLT)
			case LE:
				addRel(a.Var, a.RVar, relLE)
			case EQ:
				addRel(a.Var, a.RVar, relLE)
				addRel(a.RVar, a.Var, relLE)
			case GE:
				addRel(a.RVar, a.Var, relLE)
			case GT:
				addRel(a.RVar, a.Var, relLT)
			}
			continue
		}
		v := new(big.Rat).Set(a.Const)
		switch a.Op {
		case LT:
			cl.upper[a.Var] = tighterUpper(cl.upper[a.Var], bound{val: v, strict: true})
		case LE:
			cl.upper[a.Var] = tighterUpper(cl.upper[a.Var], bound{val: v})
		case EQ:
			cl.upper[a.Var] = tighterUpper(cl.upper[a.Var], bound{val: v})
			cl.lower[a.Var] = tighterLower(cl.lower[a.Var], bound{val: v})
		case GE:
			cl.lower[a.Var] = tighterLower(cl.lower[a.Var], bound{val: v})
		case GT:
			cl.lower[a.Var] = tighterLower(cl.lower[a.Var], bound{val: v, strict: true})
		}
	}
	// Transitive closure (Floyd-Warshall; composition is < if any hop is <).
	for m := 0; m < cl.k; m++ {
		for i := 0; i < cl.k; i++ {
			if cl.rel[i][m] == relNone {
				continue
			}
			for j := 0; j < cl.k; j++ {
				if cl.rel[m][j] == relNone {
					continue
				}
				r := relLE
				if cl.rel[i][m] == relLT || cl.rel[m][j] == relLT {
					r = relLT
				}
				if cl.rel[i][j] < r {
					cl.rel[i][j] = r
				}
			}
		}
	}
	// Propagate constant bounds through the order relations.
	for i := 0; i < cl.k; i++ {
		for j := 0; j < cl.k; j++ {
			if i == j || cl.rel[i][j] == relNone {
				continue
			}
			strictHop := cl.rel[i][j] == relLT
			// xi <= xj: xj inherits xi's lower bound, xi inherits xj's upper.
			if lb := cl.lower[i]; lb.val != nil {
				cl.lower[j] = tighterLower(cl.lower[j], bound{val: lb.val, strict: lb.strict || strictHop})
			}
			if ub := cl.upper[j]; ub.val != nil {
				cl.upper[i] = tighterUpper(cl.upper[i], bound{val: ub.val, strict: ub.strict || strictHop})
			}
		}
	}
	// Unsatisfiability checks.
	for i := 0; i < cl.k; i++ {
		if cl.rel[i][i] == relLT {
			cl.unsat = true
			return cl
		}
		lo, hi := cl.lower[i], cl.upper[i]
		if lo.val != nil && hi.val != nil {
			switch lo.val.Cmp(hi.val) {
			case 1:
				cl.unsat = true
				return cl
			case 0:
				if lo.strict || hi.strict {
					cl.unsat = true
					return cl
				}
			}
		}
	}
	return cl
}

// Satisfiable reports whether the conjunction has a rational solution.
// (Over a dense order, the closure checks are complete.)
func (c Conj) Satisfiable() bool { return !c.close().unsat }

// VarInterval is the projection of a tuple onto one variable: a single
// interval with optionally open or unbounded ends (convex CQL, Section 2.1).
type VarInterval struct {
	Lo, Hi         *big.Rat // nil = unbounded
	LoOpen, HiOpen bool
	Empty          bool
}

func (iv VarInterval) String() string {
	if iv.Empty {
		return "∅"
	}
	l, r := "(-inf", "+inf)"
	if iv.Lo != nil {
		if iv.LoOpen {
			l = "(" + iv.Lo.RatString()
		} else {
			l = "[" + iv.Lo.RatString()
		}
	}
	if iv.Hi != nil {
		if iv.HiOpen {
			r = iv.Hi.RatString() + ")"
		} else {
			r = iv.Hi.RatString() + "]"
		}
	}
	return l + "," + r
}

// Project returns the projection of the tuple on variable v, the
// "generalized key" the index stores.
func (c Conj) Project(v int) VarInterval {
	cl := c.close()
	if cl.unsat {
		return VarInterval{Empty: true}
	}
	out := VarInterval{}
	if lb := cl.lower[v]; lb.val != nil {
		out.Lo = new(big.Rat).Set(lb.val)
		out.LoOpen = lb.strict
	}
	if ub := cl.upper[v]; ub.val != nil {
		out.Hi = new(big.Rat).Set(ub.val)
		out.HiOpen = ub.strict
	}
	return out
}

// Eliminate existentially quantifies away the given variables: over a dense
// order it suffices to drop every atom mentioning them after closing the
// conjunction (the closure already records all consequences between the
// remaining variables). The result keeps the original arity with the
// eliminated variables unconstrained.
func (c Conj) Eliminate(vars ...int) Conj {
	drop := map[int]bool{}
	for _, v := range vars {
		drop[v] = true
	}
	cl := c.close()
	out := Conj{Arity: c.Arity, ID: c.ID}
	if cl.unsat {
		// Preserve unsatisfiability explicitly: 0 < 0 is false.
		zero := big.NewRat(0, 1)
		out.Atoms = append(out.Atoms, VarConst(0, LT, zero), VarConst(0, GT, zero))
		return out
	}
	for i := 0; i < cl.k; i++ {
		if drop[i] {
			continue
		}
		if lb := cl.lower[i]; lb.val != nil {
			op := GE
			if lb.strict {
				op = GT
			}
			out.Atoms = append(out.Atoms, VarConst(i, op, lb.val))
		}
		if ub := cl.upper[i]; ub.val != nil {
			op := LE
			if ub.strict {
				op = LT
			}
			out.Atoms = append(out.Atoms, VarConst(i, op, ub.val))
		}
		for j := 0; j < cl.k; j++ {
			if i == j || drop[j] || cl.rel[i][j] == relNone {
				continue
			}
			op := LE
			if cl.rel[i][j] == relLT {
				op = LT
			}
			out.Atoms = append(out.Atoms, VarVar(i, op, j))
		}
	}
	return out
}

// Evaluate reports whether the assignment satisfies the conjunction.
func (c Conj) Evaluate(assignment []*big.Rat) bool {
	if len(assignment) < c.Arity {
		panic("cql: assignment too short")
	}
	for _, a := range c.Atoms {
		l := assignment[a.Var]
		var r *big.Rat
		if a.IsVar {
			r = assignment[a.RVar]
		} else {
			r = a.Const
		}
		cmp := l.Cmp(r)
		ok := false
		switch a.Op {
		case LT:
			ok = cmp < 0
		case LE:
			ok = cmp <= 0
		case EQ:
			ok = cmp == 0
		case GE:
			ok = cmp >= 0
		case GT:
			ok = cmp > 0
		}
		if !ok {
			return false
		}
	}
	return true
}

// Relation is a generalized relation: a set of generalized tuples of the
// same arity (a DNF formula).
type Relation struct {
	Arity int
	Conjs []Conj
}

// NewRelation creates an empty generalized relation.
func NewRelation(arity int) *Relation { return &Relation{Arity: arity} }

// Add appends a tuple (its arity must match).
func (r *Relation) Add(c Conj) {
	if c.Arity != r.Arity {
		panic("cql: arity mismatch")
	}
	r.Conjs = append(r.Conjs, c)
}

// Len returns the number of generalized tuples.
func (r *Relation) Len() int { return len(r.Conjs) }

// Select returns the tuples conjoined with extra atoms, dropping the
// unsatisfiable ones (relational selection).
func (r *Relation) Select(atoms ...Atom) *Relation {
	out := NewRelation(r.Arity)
	for _, c := range r.Conjs {
		cc := c.And(atoms...)
		if cc.Satisfiable() {
			out.Add(cc)
		}
	}
	return out
}

// Union merges two relations of the same arity.
func (r *Relation) Union(s *Relation) *Relation {
	if r.Arity != s.Arity {
		panic("cql: arity mismatch")
	}
	out := NewRelation(r.Arity)
	out.Conjs = append(append([]Conj(nil), r.Conjs...), s.Conjs...)
	return out
}

// --- order-preserving rational -> int64 key embedding ------------------------

// KeyOf maps a rational to an int64 index key through the monotone float64
// bit trick. roundUp selects the rounding direction used to widen interval
// endpoints outward, guaranteeing the indexed interval contains the exact
// one.
func KeyOf(r *big.Rat, roundUp bool) int64 {
	f, exact := r.Float64()
	k := float64Key(f)
	if !exact {
		if roundUp {
			if k < math.MaxInt64-1 {
				k++
			}
		} else if k > math.MinInt64+1 {
			k--
		}
	}
	return k
}

// float64Key maps float64 to int64 preserving order (standard sortable-bits
// transform; NaN unsupported).
func float64Key(f float64) int64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	return int64(u - (1 << 63))
}
