package cql

import (
	"math/big"

	"ccidx/internal/geom"
)

// Example 2.1 of the paper: rectangles as generalized tuples. A named
// rectangle with corners (a,b) and (c,d) is the arity-3 generalized tuple
//
//	R'(z,x,y):  z = name  ∧  a <= x <= c  ∧  b <= y <= d
//
// over variables z (0), x (1), y (2). The pairs of intersecting rectangles
// are then expressible without case analysis (Section 2.1), and indexing
// R' on x through the generalized index answers the existential join.

// Variable positions in the rectangle relation.
const (
	RectVarZ = 0
	RectVarX = 1
	RectVarY = 2
)

// RectTuple encodes one rectangle as a generalized tuple whose ID is the
// rectangle's name.
func RectTuple(r geom.Rect) Conj {
	return NewConj(3, r.Name,
		EqConst(RectVarZ, new(big.Rat).SetInt64(int64(r.Name))),
		VarConst(RectVarX, GE, new(big.Rat).SetInt64(r.X1)),
		VarConst(RectVarX, LE, new(big.Rat).SetInt64(r.X2)),
		VarConst(RectVarY, GE, new(big.Rat).SetInt64(r.Y1)),
		VarConst(RectVarY, LE, new(big.Rat).SetInt64(r.Y2)),
	)
}

// RectRelation builds the generalized relation R'(z,x,y) for a rectangle
// set.
func RectRelation(rects []geom.Rect) *Relation {
	r := NewRelation(3)
	for _, rc := range rects {
		r.Add(RectTuple(rc))
	}
	return r
}

// IntersectingPairs evaluates the Example 2.1 query
//
//	{(n1,n2) | n1 != n2 ∧ ∃x,y: R'(n1,x,y) ∧ R'(n2,x,y)}
//
// through a generalized index on x: for each rectangle, the index selects
// the tuples whose x-projection meets it (types 1-4 of Proposition 2.2),
// and the y-overlap is checked by conjoining the two tuples and testing
// satisfiability — no rectangle-specific case analysis, exactly the point
// the paper makes. Pairs are reported once with n1 < n2.
func IntersectingPairs(rects []geom.Rect, cfg Config) [][2]uint64 {
	rel := RectRelation(rects)
	idx := NewGeneralizedIndex(rel, RectVarX, cfg)
	byName := make(map[uint64]Conj, len(rects))
	for _, c := range rel.Conjs {
		byName[c.ID] = c
	}
	var out [][2]uint64
	for _, rc := range rects {
		t1 := byName[rc.Name]
		cands := idx.Select(new(big.Rat).SetInt64(rc.X1), new(big.Rat).SetInt64(rc.X2))
		for _, t2 := range cands.Conjs {
			if t2.ID <= rc.Name {
				continue // each unordered pair once
			}
			// ∃x,y shared: conjoin the x/y constraints of both tuples.
			joint := t1
			for _, a := range byName[t2.ID].Atoms {
				if a.Var != RectVarZ {
					joint = joint.And(a)
				}
			}
			if joint.Satisfiable() {
				out = append(out, [2]uint64{rc.Name, t2.ID})
			}
		}
	}
	return out
}
