package replica

// Replica tests: hydration + tailing convergence against a live primary,
// the torn-hydration crash point (retry must succeed from a wiped dir),
// and the two park conditions — epoch change and falling off the retained
// log — which must leave the replica alive but not-ready.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/server"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

const testSpan = int64(4000)

// newPrimary builds a durable, replication-serving primary and returns its
// test server plus the backing manager.
func newPrimary(t *testing.T, n, logCap int) (*httptest.Server, *shard.Intervals) {
	t.Helper()
	ivs := workload.UniformIntervals(71, n, testSpan, 250)
	dm, err := shard.CreateIntervalsAt(t.TempDir(), shard.Config{
		Shards: 2, B: 8, Batch: 16,
		Partition: shard.PartitionRange, Span: testSpan, PoolFrames: 32,
	}, ivs, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Backend{Intervals: dm}, server.Config{
		Replication: true, ReplicationLog: logCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close(); dm.Close() })
	return ts, dm
}

func post(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, body)
	}
}

func stabIDs(im *shard.Intervals, q int64) map[uint64]bool {
	out := map[uint64]bool{}
	im.Stab(q, func(iv geom.Interval) bool { out[iv.ID] = true; return true })
	return out
}

func waitApplied(t *testing.T, r *Replica, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.LSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at lsn %d, want %d (status %+v)", r.LSN(), lsn, r.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicaHydrateAndTail: a replica converges to the primary's exact
// state — the hydrated image matches, and mutations applied after the
// snapshot arrive through the tail within the lag bound.
func TestReplicaHydrateAndTail(t *testing.T) {
	ts, dm := newPrimary(t, 120, 0)

	// Mutations before hydration land in the snapshot image.
	post(t, ts.URL+"/v1/insert?lo=100&hi=200&id=50001")

	r, err := Open(ts.URL, Options{Dir: t.TempDir(), Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, want := r.Intervals().Len(), dm.Len(); got != want {
		t.Fatalf("hydrated %d intervals, primary has %d", got, want)
	}
	if !stabIDs(r.Intervals(), 150)[50001] {
		t.Fatal("pre-snapshot insert missing from hydrated image")
	}
	st := r.Status()
	if !st.Ready || st.Role != "replica" || st.Epoch == "" {
		t.Fatalf("fresh replica status %+v", st)
	}

	// Mutations after hydration arrive through the tail.
	post(t, ts.URL+"/v1/insert?lo=300&hi=400&id=50002")
	post(t, ts.URL+"/v1/delete?id=50001")
	waitApplied(t, r, 3)
	if !stabIDs(r.Intervals(), 350)[50002] {
		t.Fatal("tailed insert not visible on replica")
	}
	if stabIDs(r.Intervals(), 150)[50001] {
		t.Fatal("tailed delete not applied on replica")
	}
	if lag := r.Lag(); lag != 0 {
		t.Fatalf("caught-up replica lag %d", lag)
	}
	// Full-state oracle across the span.
	for q := int64(0); q < testSpan; q += 97 {
		p, rr := stabIDs(dm, q), stabIDs(r.Intervals(), q)
		if len(p) != len(rr) {
			t.Fatalf("stab(%d): primary %d ids, replica %d", q, len(p), len(rr))
		}
		for id := range p {
			if !rr[id] {
				t.Fatalf("stab(%d): id %d on primary only", q, id)
			}
		}
	}
}

// TestReplicaTornHydration is the replica-hydration crash point: a
// snapshot stream severed mid-file must fail loudly, and a retry against a
// healthy primary must succeed from the same directory.
func TestReplicaTornHydration(t *testing.T) {
	ts, _ := newPrimary(t, 100, 0)

	// A proxy that forwards the snapshot but kills the connection after a
	// prefix — long enough to get past SNAPMETA.json into the data files.
	torn := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		resp, err := http.Get(ts.URL + req.URL.String())
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		defer resp.Body.Close()
		prefix := make([]byte, 4096)
		n, _ := io.ReadFull(resp.Body, prefix)
		w.Write(prefix[:n])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}))
	defer torn.Close()

	dir := t.TempDir()
	if _, err := Hydrate(http.DefaultClient, torn.URL, dir); err == nil {
		t.Fatal("torn hydration accepted")
	}
	// Retry against the healthy primary: Open wipes the dir and succeeds.
	r, err := Open(ts.URL, Options{Dir: dir, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("re-hydration after torn stream: %v", err)
	}
	defer r.Close()
	if !r.Status().Ready {
		t.Fatalf("re-hydrated replica not ready: %+v", r.Status())
	}
}

// switchable lets tests redirect or gate a replica's view of its primary.
type switchable struct {
	target  atomic.Pointer[string] // forward here
	gateWAL atomic.Bool            // while set, /v1/wal answers 503
}

func (sw *switchable) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if sw.gateWAL.Load() && strings.HasPrefix(req.URL.Path, "/v1/wal") {
			http.Error(w, "gated", http.StatusServiceUnavailable)
			return
		}
		resp, err := http.Get(*sw.target.Load() + req.URL.String())
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	})
}

// TestReplicaParksOnEpochChange: when the process behind the primary URL
// is replaced (new epoch), the replica must park not-ready rather than
// apply a different history's log.
func TestReplicaParksOnEpochChange(t *testing.T) {
	tsA, _ := newPrimary(t, 60, 0)
	tsB, _ := newPrimary(t, 60, 0)

	var sw switchable
	urlA := tsA.URL
	sw.target.Store(&urlA)
	front := httptest.NewServer(sw.handler())
	defer front.Close()

	r, err := Open(front.URL, Options{Dir: t.TempDir(), Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// "Restart" the primary: same URL, different process → different epoch.
	urlB := tsB.URL
	sw.target.Store(&urlB)
	post(t, tsB.URL+"/v1/insert?lo=1&hi=2&id=60001")

	deadline := time.Now().Add(5 * time.Second)
	for r.Status().Ready {
		if time.Now().After(deadline) {
			t.Fatalf("replica still ready after epoch change: %+v", r.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := r.Status()
	if !strings.Contains(st.Detail, "epoch") {
		t.Fatalf("park detail %q does not name the epoch change", st.Detail)
	}
	// Parked, not dead: stale reads still answer.
	if len(stabIDs(r.Intervals(), 150)) == 0 {
		t.Fatal("parked replica stopped answering reads")
	}
}

// TestReplicaParksOnGone: a replica held off the wire while the primary's
// bounded log rolls past its position must park (re-hydration required),
// not resume with a hole in its history.
func TestReplicaParksOnGone(t *testing.T) {
	ts, _ := newPrimary(t, 60, 4) // retain only 4 ops

	var sw switchable
	url := ts.URL
	sw.target.Store(&url)
	front := httptest.NewServer(sw.handler())
	defer front.Close()

	r, err := Open(front.URL, Options{Dir: t.TempDir(), Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Gate the tail, then push the log past its 4-op retention.
	sw.gateWAL.Store(true)
	for i := 0; i < 10; i++ {
		post(t, fmt.Sprintf("%s/v1/insert?lo=%d&hi=%d&id=%d", ts.URL, i, i+1, 61000+i))
	}
	sw.gateWAL.Store(false)

	deadline := time.Now().Add(5 * time.Second)
	for r.Status().Ready {
		if time.Now().After(deadline) {
			t.Fatalf("replica still ready after falling off the log: %+v", r.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := r.Status(); !strings.Contains(st.Detail, "re-hydration") {
		t.Fatalf("park detail %q does not demand re-hydration", st.Detail)
	}
}

// TestReplicaLagReadiness pins the readiness formula: a replica beyond its
// lag bound reports not-ready with the lag visible, without being parked.
func TestReplicaLagReadiness(t *testing.T) {
	r := &Replica{maxLag: 5}
	r.im = shard.NewIntervals(shard.Config{Shards: 1, B: 8, Span: 100}, nil)
	r.applied.Store(10)
	r.head.Store(20)
	st := r.Status()
	if st.Ready || st.Lag != 10 {
		t.Fatalf("lag 10 > bound 5 but status %+v", st)
	}
	r.applied.Store(16)
	if st := r.Status(); !st.Ready || st.Lag != 4 {
		t.Fatalf("lag 4 <= bound 5 but status %+v", st)
	}
}

// TestReplicaRequiresDir: Options.Dir is mandatory.
func TestReplicaRequiresDir(t *testing.T) {
	if _, err := Open("http://127.0.0.1:1", Options{}); err == nil {
		t.Fatal("missing Dir accepted")
	}
}
