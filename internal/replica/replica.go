// Package replica implements a snapshot-shipped read replica of a serving
// primary.
//
// A replica hydrates by downloading the primary's /v1/snapshot — a tar of
// its checkpoint directory stamped with the (epoch, lsn, seq) coordinates
// the image corresponds to — into a local directory, opening it with the
// ordinary sharded open path, and then tailing the primary's logical WAL
// stream (/v1/wal?from=lsn) to stay within a bounded lag. Reads never
// mutate the paper's structures, so a replica serves the full query
// surface at full speed; its only writer is the tailer goroutine.
//
// Failure handling is crash-only: a replica that falls off the primary's
// retained log (410 Gone) or observes an epoch change (primary restarted)
// cannot safely continue — it parks itself as permanently not-ready and
// reports why, and the operator (or the smoke harness) restarts the
// process, which re-hydrates from a fresh snapshot. A torn hydration
// (connection dropped mid-tar) leaves no committed manifest in the target
// directory, so a retry simply wipes and starts over — the same
// "treat the directory as never created" rule as a crashed CreateAt.
package replica

import (
	"archive/tar"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/replication"
	"ccidx/internal/shard"
)

// Options configures a replica. Zero values take the defaults.
type Options struct {
	// Dir is the local hydration directory (required). It is wiped on
	// Open: a replica's local state is always reconstructable from the
	// primary, so stale leftovers are never worth recovering.
	Dir string
	// Poll is the WAL tail interval (default 25ms). A capped response
	// (more ops pending) re-polls immediately, so catch-up throughput does
	// not depend on Poll.
	Poll time.Duration
	// MaxLag is the readiness lag bound in ops (default 4096): a replica
	// further behind reports ready=false until it catches back up.
	MaxLag int64
	// Client issues the HTTP requests (default: a client with a 30s
	// timeout, sized for the snapshot download).
	Client *http.Client
	// Fsync is the local devices' sync policy (default disk.FsyncNever:
	// the replica's durability story is re-hydration, not its own disk).
	Fsync disk.FsyncPolicy
}

// Replica is a live read replica: an opened sharded interval manager plus
// the tailer keeping it within lag of the primary.
type Replica struct {
	primary string
	dir     string
	poll    time.Duration
	maxLag  int64
	client  *http.Client

	im    *shard.Intervals
	epoch string

	applied atomic.Uint64 // last applied LSN
	head    atomic.Uint64 // primary's head at last successful poll
	ops     atomic.Int64  // ops applied since hydration
	polls   atomic.Int64  // successful tail polls

	mu    sync.Mutex
	fatal string // non-empty once the replica can no longer follow

	stop chan struct{}
	done chan struct{}
}

// Open hydrates a replica of primary into opt.Dir and starts the tailer.
func Open(primary string, opt Options) (*Replica, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("replica: Options.Dir is required")
	}
	if opt.Poll <= 0 {
		opt.Poll = 25 * time.Millisecond
	}
	if opt.MaxLag <= 0 {
		opt.MaxLag = 4096
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 30 * time.Second}
	}
	primary = strings.TrimRight(primary, "/")

	meta, err := Hydrate(opt.Client, primary, opt.Dir)
	if err != nil {
		return nil, err
	}
	// The replica re-hydrates from the primary after any restart, so its
	// own WAL would only ever be thrown away: disable it.
	dopt := intervals.DurableOptions{Fsync: opt.Fsync, DisableWAL: true}
	im, err := shard.OpenIntervals(opt.Dir, dopt)
	if err != nil {
		return nil, fmt.Errorf("replica: opening hydrated %s: %w", opt.Dir, err)
	}
	if im.Seq() != meta.Seq {
		im.Close()
		return nil, fmt.Errorf("replica: hydrated generation %d, snapshot meta says %d", im.Seq(), meta.Seq)
	}
	r := &Replica{
		primary: primary,
		dir:     opt.Dir,
		poll:    opt.Poll,
		maxLag:  opt.MaxLag,
		client:  opt.Client,
		im:      im,
		epoch:   meta.Epoch,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	r.applied.Store(meta.LSN)
	r.head.Store(meta.LSN)
	go r.tail()
	return r, nil
}

// Hydrate downloads primary's snapshot into dir (wiped first) and returns
// the image's replication coordinates. Exposed so harnesses can exercise
// hydration (including torn hydration) without a full Replica.
func Hydrate(client *http.Client, primary, dir string) (replication.SnapshotMeta, error) {
	var meta replication.SnapshotMeta
	if err := os.RemoveAll(dir); err != nil {
		return meta, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return meta, err
	}
	resp, err := client.Get(primary + "/v1/snapshot")
	if err != nil {
		return meta, fmt.Errorf("replica: snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return meta, fmt.Errorf("replica: snapshot: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	tr := tar.NewReader(resp.Body)
	first := true
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return meta, fmt.Errorf("replica: torn snapshot stream: %w", err)
		}
		if first {
			if hdr.Name != replication.SnapshotMetaName {
				return meta, fmt.Errorf("replica: snapshot stream starts with %q, want %q", hdr.Name, replication.SnapshotMetaName)
			}
			if err := json.NewDecoder(io.LimitReader(tr, 1<<16)).Decode(&meta); err != nil {
				return meta, fmt.Errorf("replica: snapshot meta: %w", err)
			}
			first = false
			continue
		}
		path, err := safeJoin(dir, hdr.Name)
		if err != nil {
			return meta, err
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return meta, err
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return meta, err
		}
		n, err := io.Copy(f, tr)
		cerr := f.Close()
		if err != nil || n != hdr.Size {
			return meta, fmt.Errorf("replica: torn snapshot file %s (%d of %d bytes): %v", hdr.Name, n, hdr.Size, err)
		}
		if cerr != nil {
			return meta, cerr
		}
	}
	if first {
		return meta, fmt.Errorf("replica: empty snapshot stream")
	}
	return meta, nil
}

// safeJoin joins a tar entry name under dir, refusing traversal.
func safeJoin(dir, name string) (string, error) {
	clean := filepath.Clean(filepath.FromSlash(name))
	if filepath.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("replica: snapshot entry %q escapes the hydration dir", name)
	}
	return filepath.Join(dir, clean), nil
}

// tail is the replica's only writer: poll the primary's log from the next
// LSN, apply in order, loop. Transient failures (primary briefly down,
// dropped connection) are simply retried at the next tick; the two
// unrecoverable conditions — epoch change and falling off the retained log
// — park the replica as not-ready.
func (r *Replica) tail() {
	defer close(r.done)
	t := time.NewTicker(r.poll)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		for {
			more, err := r.pollOnce()
			if err != nil {
				r.park(err)
				return
			}
			if !more {
				break
			}
			// A capped response means more ops are already waiting: keep
			// draining without sleeping a poll interval per page.
			select {
			case <-r.stop:
				return
			default:
			}
		}
	}
}

// pollOnce fetches and applies one /v1/wal page. It returns (more, err):
// more means the response was capped and another page is pending; a
// non-nil err is FATAL (the tailer parks). Transient transport errors
// return (false, nil) after recording nothing — lag will show up via the
// next successful poll.
func (r *Replica) pollOnce() (bool, error) {
	from := r.applied.Load() + 1
	resp, err := r.client.Get(fmt.Sprintf("%s/v1/wal?from=%d", r.primary, from))
	if err != nil {
		return false, nil // transient: retry next tick
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return false, fmt.Errorf("fell off the primary's retained log at lsn %d: re-hydration required", from)
	default:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return false, nil              // transient (shed, restarting, ...): retry next tick
	}
	var wr replication.WALResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return false, nil // torn response: retry next tick
	}
	if wr.Epoch != r.epoch {
		return false, fmt.Errorf("primary epoch changed %s -> %s (primary restarted): re-hydration required", r.epoch, wr.Epoch)
	}
	if err := r.apply(wr.Ops); err != nil {
		return false, err
	}
	r.head.Store(wr.Head)
	r.polls.Add(1)
	// A capped response leaves applied < head: more ops already waiting.
	return r.applied.Load() < wr.Head, nil
}

// apply replays ops in LSN order onto the local sharded manager. A panic
// out of the apply (the structures fail loudly on impossible streams, e.g.
// an insert of a live id) is converted to a fatal parked state: the
// replica stops serving fresh data but the process survives.
func (r *Replica) apply(ops []replication.Op) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("applying replicated op: %v", p)
		}
	}()
	for _, op := range ops {
		if op.Del {
			r.im.Delete(op.ID)
		} else {
			r.im.Insert(geom.Interval{Lo: op.Lo, Hi: op.Hi, ID: op.ID})
		}
		r.applied.Add(1)
		r.ops.Add(1)
	}
	return nil
}

// park records the fatal condition; the replica keeps serving (stale)
// reads but reports not-ready until the process is restarted.
func (r *Replica) park(err error) {
	r.mu.Lock()
	r.fatal = err.Error()
	r.mu.Unlock()
}

// Intervals returns the replica's sharded manager — the backend a serving
// front-end reads from.
func (r *Replica) Intervals() *shard.Intervals { return r.im }

// Epoch returns the primary epoch the replica hydrated under.
func (r *Replica) Epoch() string { return r.epoch }

// LSN returns the last applied LSN.
func (r *Replica) LSN() uint64 { return r.applied.Load() }

// Lag returns the op lag behind the primary's head at the last successful
// poll (an unreachable primary freezes it).
func (r *Replica) Lag() int64 {
	h, a := r.head.Load(), r.applied.Load()
	if h <= a {
		return 0
	}
	return int64(h - a)
}

// Applied returns the number of ops applied since hydration.
func (r *Replica) Applied() int64 { return r.ops.Load() }

// Status is the replica's readiness document — the serving front-end's
// Config.Status provider. Not ready while parked or beyond the lag bound.
func (r *Replica) Status() replication.Status {
	r.mu.Lock()
	fatal := r.fatal
	r.mu.Unlock()
	lag := r.Lag()
	return replication.Status{
		Ready:  fatal == "" && lag <= r.maxLag,
		Role:   "replica",
		Epoch:  r.epoch,
		Gen:    r.im.Seq(),
		LSN:    r.applied.Load(),
		Lag:    lag,
		Detail: fatal,
	}
}

// Close stops the tailer and closes the local shard devices.
func (r *Replica) Close() error {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
	return r.im.Close()
}
