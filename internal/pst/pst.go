// Package pst implements the external priority search tree of Lemma 4.1
// (after Icking, Klein and Ottmann [17]): a balanced binary tree over x in
// which every node stores the B points with the largest y values among the
// points of its x-range not already stored by an ancestor.
//
// Bounds (Lemma 4.1): a 3-sided query [x1,x2] x [y,inf) on n points costs
// O(log2 n + t/B) I/Os, the structure occupies O(n/B) blocks, and it can be
// built in O((n/B) log_B n) I/Os. The paper uses this structure for the
// per-metablock and per-child-set 3-sided organisations of Section 4, where
// the point count is O(B^2) or O(B^3), making the log2 term O(log2 B).
//
// Two properties drive the query bound:
//
//   - heap property: every point stored in a proper descendant of a full
//     node v has y no larger than the smallest y stored at v, so a subtree
//     is pruned as soon as a node is not full or its minimum stored y falls
//     below the query threshold;
//   - x-span pruning: each node records its children's subtree x-spans, so
//     a child disjoint from [x1,x2] is never read. Fully-contained children
//     are read only below fully-reported nodes, and those reads are paid
//     for by the B points just reported.
//
// The package also contains an in-core McCreight priority search tree
// (mccreight.go), the paper's reference point for optimal main-memory
// dynamic interval management (Section 1.4).
package pst

import (
	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

const (
	pointSize  = 24            // x, y int64 + id uint64
	nodeHeader = 2 + 2*8 + 4*8 // count u16, left/right ids, left/right x-spans
)

// Tree is a static external priority search tree. Concurrent queries are
// safe once construction finishes (the query path only reads pages).
type Tree struct {
	pager    *disk.Pager
	dev      disk.Device // page I/O surface; the pager, or a pool over it
	b        int
	root     disk.BlockID
	n        int
	pageSize int

	// wbuf is the build-time page-encode scratch (construction only).
	wbuf []byte
}

// PageSize returns the page size in bytes for block capacity b.
func PageSize(b int) int { return nodeHeader + b*pointSize }

// Build constructs the tree from an arbitrary point slice (copied, then
// sorted internally). b is the block capacity B.
func Build(b int, pts []geom.Point) *Tree {
	if b < 2 {
		panic("pst: block capacity must be at least 2")
	}
	t := &Tree{
		pager:    disk.NewPager(PageSize(b)),
		b:        b,
		n:        len(pts),
		pageSize: PageSize(b),
	}
	t.dev = t.pager
	own := append([]geom.Point(nil), pts...)
	geom.SortByX(own)
	t.root, _ = t.build(own)
	return t
}

// Pager exposes the underlying device for I/O accounting.
func (t *Tree) Pager() *disk.Pager { return t.pager }

// SetDevice routes all page I/O through d (e.g. a *disk.Pool over Pager()).
func (t *Tree) SetDevice(d disk.Device) { t.dev = d }

// Len returns the number of points stored.
func (t *Tree) Len() int { return t.n }

// B returns the block capacity.
func (t *Tree) B() int { return t.b }

// span is a closed x-range of a subtree. Empty subtrees use lo > hi.
type span struct{ lo, hi int64 }

func (s span) intersects(x1, x2 int64) bool { return s.lo <= x2 && x1 <= s.hi }

type pstNode struct {
	pts         []geom.Point // stored points, sorted by decreasing y
	left, right disk.BlockID
	lspan       span
	rspan       span
}

// build recursively constructs the subtree for the x-sorted slice pts and
// returns its block id (NilBlock for an empty slice) plus its x-span.
func (t *Tree) build(pts []geom.Point) (disk.BlockID, span) {
	if len(pts) == 0 {
		return disk.NilBlock, span{lo: 1, hi: 0}
	}
	sp := span{lo: pts[0].X, hi: pts[len(pts)-1].X}
	nd := &pstNode{lspan: span{lo: 1, hi: 0}, rspan: span{lo: 1, hi: 0}}
	if len(pts) <= t.b {
		nd.pts = append([]geom.Point(nil), pts...)
		geom.SortByYDesc(nd.pts)
		return t.writeNode(nd), sp
	}
	// Select the B points with the largest y values.
	idx := topYIndices(pts, t.b)
	taken := make([]bool, len(pts))
	for _, i := range idx {
		taken[i] = true
		nd.pts = append(nd.pts, pts[i])
	}
	geom.SortByYDesc(nd.pts)
	rest := make([]geom.Point, 0, len(pts)-t.b)
	for i, p := range pts {
		if !taken[i] {
			rest = append(rest, p)
		}
	}
	mid := len(rest) / 2
	nd.left, nd.lspan = t.build(rest[:mid])
	nd.right, nd.rspan = t.build(rest[mid:])
	return t.writeNode(nd), sp
}

// topYIndices returns the indices of the k points with the largest y
// (ties broken by the canonical order), as a bounded insertion pass.
func topYIndices(pts []geom.Point, k int) []int {
	best := make([]int, 0, k)
	worse := func(i, j int) bool { // pts[i] has lower y-priority than pts[j]
		return geom.YDescLess(pts[j], pts[i])
	}
	for i := range pts {
		if len(best) < k {
			best = append(best, i)
			for j := len(best) - 1; j > 0 && worse(best[j-1], best[j]); j-- {
				best[j-1], best[j] = best[j], best[j-1]
			}
			continue
		}
		if worse(best[k-1], i) {
			best[k-1] = i
			for j := k - 1; j > 0 && worse(best[j-1], best[j]); j-- {
				best[j-1], best[j] = best[j], best[j-1]
			}
		}
	}
	return best
}

func (t *Tree) writeNode(nd *pstNode) disk.BlockID {
	id := t.dev.Alloc()
	if t.wbuf == nil {
		t.wbuf = make([]byte, t.pageSize)
	} else {
		clear(t.wbuf)
	}
	buf := t.wbuf
	cnt := len(nd.pts)
	buf[0] = byte(cnt)
	buf[1] = byte(cnt >> 8)
	putLE64(buf[2:], uint64(int64(nd.left)))
	putLE64(buf[10:], uint64(int64(nd.right)))
	putLE64(buf[18:], uint64(nd.lspan.lo))
	putLE64(buf[26:], uint64(nd.lspan.hi))
	putLE64(buf[34:], uint64(nd.rspan.lo))
	putLE64(buf[42:], uint64(nd.rspan.hi))
	off := nodeHeader
	for _, p := range nd.pts {
		putLE64(buf[off:], uint64(p.X))
		putLE64(buf[off+8:], uint64(p.Y))
		putLE64(buf[off+16:], p.ID)
		off += pointSize
	}
	disk.MustWriteAt(t.dev, id, buf)
	return id
}

func (t *Tree) readNode(id disk.BlockID) *pstNode {
	view := disk.MustView(t.dev, id)
	cnt := int(uint16(view[0]) | uint16(view[1])<<8)
	nd := &pstNode{
		left:  disk.BlockID(int64(le64(view[2:]))),
		right: disk.BlockID(int64(le64(view[10:]))),
		lspan: span{lo: int64(le64(view[18:])), hi: int64(le64(view[26:]))},
		rspan: span{lo: int64(le64(view[34:])), hi: int64(le64(view[42:]))},
	}
	off := nodeHeader
	nd.pts = make([]geom.Point, cnt)
	for i := 0; i < cnt; i++ {
		nd.pts[i] = geom.Point{
			X:  int64(le64(view[off:])),
			Y:  int64(le64(view[off+8:])),
			ID: le64(view[off+16:]),
		}
		off += pointSize
	}
	t.dev.Release(id)
	return nd
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Query reports every point in [q.X1, q.X2] x [q.Y, inf). Enumeration stops
// early if emit returns false. Cost: O(log2 n + t/B) I/Os.
func (t *Tree) Query(q geom.ThreeSidedQuery, emit geom.Emit) {
	if !q.Valid() || t.root == disk.NilBlock {
		return
	}
	t.query(t.root, q, emit)
}

// query returns false if enumeration was stopped early. The node is read
// through a borrowed zero-copy view: points are streamed to emit and the
// child pointers extracted into locals, so the view is released before
// recursing and the whole descent allocates nothing.
func (t *Tree) query(id disk.BlockID, q geom.ThreeSidedQuery, emit geom.Emit) bool {
	view := disk.MustView(t.dev, id)
	cnt := int(uint16(view[0]) | uint16(view[1])<<8)
	stopped := false
	// Children can hold points with y >= q.Y only when this node is full
	// and its smallest stored y is still >= q.Y (heap property).
	prune := cnt < t.b
	for i, off := 0, nodeHeader; i < cnt; i, off = i+1, off+pointSize {
		p := geom.Point{
			X:  int64(le64(view[off:])),
			Y:  int64(le64(view[off+8:])),
			ID: le64(view[off+16:]),
		}
		// Stored points are sorted by decreasing y: stop at the threshold.
		if p.Y < q.Y {
			prune = true
			break
		}
		if p.X >= q.X1 && p.X <= q.X2 {
			if !emit(p) {
				stopped = true
				break
			}
		}
	}
	left := disk.BlockID(int64(le64(view[2:])))
	right := disk.BlockID(int64(le64(view[10:])))
	lspan := span{lo: int64(le64(view[18:])), hi: int64(le64(view[26:]))}
	rspan := span{lo: int64(le64(view[34:])), hi: int64(le64(view[42:]))}
	t.dev.Release(id)
	if stopped {
		return false
	}
	if prune {
		return true
	}
	if left != disk.NilBlock && lspan.intersects(q.X1, q.X2) {
		if !t.query(left, q, emit) {
			return false
		}
	}
	if right != disk.NilBlock && rspan.intersects(q.X1, q.X2) {
		if !t.query(right, q, emit) {
			return false
		}
	}
	return true
}
