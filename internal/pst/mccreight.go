package pst

import (
	"ccidx/internal/geom"
)

// InCore is a static in-core priority search tree (McCreight [25]), the
// structure the paper cites as the optimal main-memory solution for dynamic
// interval management (Section 1.4): O(n) space and O(log2 n + t) query.
// It serves as an oracle and as the in-core baseline that external
// structures are compared against in the experiments: its query time is
// optimal in comparisons but it has no blocking, so a naive mapping to disk
// costs O(log2 n + t) I/Os rather than O(log_B n + t/B).
type InCore struct {
	nodes []inCoreNode
	root  int
	n     int
}

type inCoreNode struct {
	pt          geom.Point // the maximum-y point of this subtree's pool
	split       int64      // x values <= split go left
	left, right int        // -1 for none
}

// BuildInCore constructs the tree from the given points.
func BuildInCore(pts []geom.Point) *InCore {
	own := append([]geom.Point(nil), pts...)
	geom.SortByX(own)
	t := &InCore{root: -1, n: len(own)}
	t.root = t.build(own)
	return t
}

// Len returns the number of stored points.
func (t *InCore) Len() int { return t.n }

func (t *InCore) build(pts []geom.Point) int {
	if len(pts) == 0 {
		return -1
	}
	// Pull out the max-y point; split the rest at the median x.
	maxi := 0
	for i, p := range pts {
		if geom.YDescLess(p, pts[maxi]) {
			maxi = i
		}
	}
	nd := inCoreNode{pt: pts[maxi], left: -1, right: -1}
	rest := make([]geom.Point, 0, len(pts)-1)
	rest = append(rest, pts[:maxi]...)
	rest = append(rest, pts[maxi+1:]...)
	idx := len(t.nodes)
	t.nodes = append(t.nodes, nd)
	if len(rest) > 0 {
		mid := (len(rest) - 1) / 2
		t.nodes[idx].split = rest[mid].X
		l := t.build(rest[:mid+1])
		r := t.build(rest[mid+1:])
		t.nodes[idx].left = l
		t.nodes[idx].right = r
	}
	return idx
}

// Query reports every point in [q.X1,q.X2] x [q.Y, inf) in O(log2 n + t)
// comparisons.
func (t *InCore) Query(q geom.ThreeSidedQuery, emit geom.Emit) {
	if !q.Valid() || t.root < 0 {
		return
	}
	t.query(t.root, q, emit)
}

func (t *InCore) query(i int, q geom.ThreeSidedQuery, emit geom.Emit) bool {
	nd := t.nodes[i]
	if nd.pt.Y < q.Y {
		// Heap property: everything below has y <= nd.pt.Y < q.Y.
		return true
	}
	if nd.pt.X >= q.X1 && nd.pt.X <= q.X2 {
		if !emit(nd.pt) {
			return false
		}
	}
	if nd.left >= 0 && q.X1 <= nd.split {
		if !t.query(nd.left, q, emit) {
			return false
		}
	}
	// Right subtree holds x >= split (duplicates of the split value may sit
	// on either side), so the descend test must be inclusive.
	if nd.right >= 0 && q.X2 >= nd.split {
		if !t.query(nd.right, q, emit) {
			return false
		}
	}
	return true
}

// Stab reports every interval-point (lo,hi) whose interval contains x,
// i.e. the diagonal corner query at (x,x); a convenience for the interval
// management baseline.
func (t *InCore) Stab(x int64, emit geom.Emit) {
	t.Query(geom.ThreeSidedQuery{X1: -1 << 63, X2: x, Y: x}, emit)
}
