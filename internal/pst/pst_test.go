package pst

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ccidx/internal/geom"
)

func genPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange), ID: uint64(i)}
	}
	return pts
}

func oracle3Sided(pts []geom.Point, q geom.ThreeSidedQuery) []uint64 {
	var out []uint64
	for _, p := range pts {
		if q.Contains(p) {
			out = append(out, p.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func runQuery(t *Tree, q geom.ThreeSidedQuery) []uint64 {
	var got []geom.Point
	t.Query(q, geom.Collect(&got))
	return geom.DedupIDs(got)
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExternalPSTMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := genPoints(rng, 2000, 500)
	tree := Build(8, pts)
	for trial := 0; trial < 300; trial++ {
		x1 := rng.Int63n(500)
		x2 := x1 + rng.Int63n(500-x1+1)
		q := geom.ThreeSidedQuery{X1: x1, X2: x2, Y: rng.Int63n(500)}
		got := runQuery(tree, q)
		want := oracle3Sided(pts, q)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d q=%+v: got %d ids want %d", trial, q, len(got), len(want))
		}
	}
}

func TestExternalPSTNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := genPoints(rng, 1000, 50) // many coordinate collisions
	tree := Build(4, pts)
	q := geom.ThreeSidedQuery{X1: 10, X2: 40, Y: 5}
	var got []geom.Point
	tree.Query(q, geom.Collect(&got))
	seen := map[uint64]bool{}
	for _, p := range got {
		if seen[p.ID] {
			t.Fatalf("duplicate id %d", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestExternalPSTEmptyAndDegenerate(t *testing.T) {
	empty := Build(4, nil)
	var got []geom.Point
	empty.Query(geom.ThreeSidedQuery{X1: 0, X2: 10, Y: 0}, geom.Collect(&got))
	if len(got) != 0 {
		t.Fatal("empty tree returned points")
	}
	one := Build(4, []geom.Point{{X: 5, Y: 5, ID: 1}})
	one.Query(geom.ThreeSidedQuery{X1: 5, X2: 5, Y: 5}, geom.Collect(&got))
	if len(got) != 1 {
		t.Fatalf("singleton query got %d", len(got))
	}
	got = got[:0]
	one.Query(geom.ThreeSidedQuery{X1: 6, X2: 4, Y: 0}, geom.Collect(&got))
	if len(got) != 0 {
		t.Fatal("invalid query returned points")
	}
}

func TestExternalPSTEarlyStop(t *testing.T) {
	pts := genPoints(rand.New(rand.NewSource(3)), 500, 100)
	tree := Build(4, pts)
	count := 0
	tree.Query(geom.ThreeSidedQuery{X1: 0, X2: 100, Y: 0}, func(geom.Point) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop emitted %d", count)
	}
}

// Lemma 4.1 query bound: I/Os <= c1*log2(n) + c2*t/B + c3.
func TestExternalPSTQueryIOBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := 16
	n := 30000
	pts := genPoints(rng, n, 10000)
	tree := Build(b, pts)
	log2n := 0
	for v := 1; v < n; v *= 2 {
		log2n++
	}
	for trial := 0; trial < 60; trial++ {
		x1 := rng.Int63n(10000)
		x2 := x1 + rng.Int63n(10000-x1+1)
		q := geom.ThreeSidedQuery{X1: x1, X2: x2, Y: rng.Int63n(10000)}
		before := tree.Pager().Stats()
		var got []geom.Point
		tree.Query(q, geom.Collect(&got))
		ios := tree.Pager().Stats().Sub(before).IOs()
		bound := int64(3*log2n) + 4*int64(len(got))/int64(b) + 4
		if ios > bound {
			t.Fatalf("q=%+v t=%d: %d I/Os exceeds bound %d", q, len(got), ios, bound)
		}
	}
}

// Lemma 4.1 space bound: O(n/B) blocks.
func TestExternalPSTSpaceBound(t *testing.T) {
	b := 16
	n := 20000
	pts := genPoints(rand.New(rand.NewSource(5)), n, 1<<30)
	tree := Build(b, pts)
	if got, lim := tree.Pager().Allocated(), int64(4*n/b); got > lim {
		t.Fatalf("space %d blocks exceeds %d", got, lim)
	}
}

func TestExternalPSTAllPointsReachable(t *testing.T) {
	pts := genPoints(rand.New(rand.NewSource(6)), 1234, 300)
	tree := Build(8, pts)
	var got []geom.Point
	tree.Query(geom.ThreeSidedQuery{X1: -1 << 62, X2: 1 << 62, Y: -1 << 62}, geom.Collect(&got))
	if len(got) != len(pts) {
		t.Fatalf("full query returned %d of %d", len(got), len(pts))
	}
}

func TestTopYIndices(t *testing.T) {
	pts := []geom.Point{{Y: 5}, {Y: 9}, {Y: 1}, {Y: 7}, {Y: 3}}
	idx := topYIndices(pts, 2)
	if len(idx) != 2 {
		t.Fatalf("len=%d", len(idx))
	}
	if pts[idx[0]].Y != 9 || pts[idx[1]].Y != 7 {
		t.Fatalf("top2 = %v %v", pts[idx[0]], pts[idx[1]])
	}
	// k >= len returns everything.
	if got := topYIndices(pts, 10); len(got) != 5 {
		t.Fatalf("k>len returned %d", len(got))
	}
}

func TestPSTPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := genPoints(rng, 50+rng.Intn(200), 40)
		tree := Build(2+rng.Intn(8), pts)
		for k := 0; k < 10; k++ {
			x1 := rng.Int63n(40)
			x2 := x1 + rng.Int63n(40-x1+1)
			q := geom.ThreeSidedQuery{X1: x1, X2: x2, Y: rng.Int63n(40)}
			if !equalIDs(runQuery(tree, q), oracle3Sided(pts, q)) {
				return false
			}
		}
		return true
	}
	// Fixed-seed Rand keeps the property deterministic (testing/quick
	// defaults to a time-seeded generator).
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(76))}
	if testing.Short() {
		cfg.MaxCount = 7
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// --- in-core McCreight PST ---

func TestInCoreMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := genPoints(rng, 1500, 400)
	tree := BuildInCore(pts)
	if tree.Len() != len(pts) {
		t.Fatalf("Len=%d", tree.Len())
	}
	for trial := 0; trial < 200; trial++ {
		x1 := rng.Int63n(400)
		x2 := x1 + rng.Int63n(400-x1+1)
		q := geom.ThreeSidedQuery{X1: x1, X2: x2, Y: rng.Int63n(400)}
		var got []geom.Point
		tree.Query(q, geom.Collect(&got))
		if !equalIDs(geom.DedupIDs(got), oracle3Sided(pts, q)) {
			t.Fatalf("trial %d mismatch", trial)
		}
	}
}

func TestInCoreStabEqualsIntervalContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ivs := make([]geom.Interval, 300)
	pts := make([]geom.Point, 300)
	for i := range ivs {
		lo := rng.Int63n(100)
		hi := lo + rng.Int63n(100-lo+1)
		ivs[i] = geom.Interval{Lo: lo, Hi: hi, ID: uint64(i)}
		pts[i] = ivs[i].ToPoint()
	}
	tree := BuildInCore(pts)
	for q := int64(0); q < 100; q += 7 {
		var got []geom.Point
		tree.Stab(q, geom.Collect(&got))
		want := 0
		for _, iv := range ivs {
			if iv.Contains(q) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("stab %d: got %d want %d", q, len(got), want)
		}
	}
}

func TestInCoreEmpty(t *testing.T) {
	tree := BuildInCore(nil)
	var got []geom.Point
	tree.Query(geom.ThreeSidedQuery{X1: 0, X2: 1, Y: 0}, geom.Collect(&got))
	if len(got) != 0 {
		t.Fatal("empty in-core PST returned points")
	}
}

func TestInCoreEarlyStop(t *testing.T) {
	pts := genPoints(rand.New(rand.NewSource(9)), 100, 20)
	tree := BuildInCore(pts)
	count := 0
	tree.Query(geom.ThreeSidedQuery{X1: 0, X2: 20, Y: 0}, func(geom.Point) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop emitted %d", count)
	}
}
