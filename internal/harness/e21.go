package harness

// E21 — Durable storage: cold-open I/O and durable-vs-simulated
// throughput.
//
// The paper's cost model counts page transfers to secondary storage;
// PR 1-4 measured them against an in-memory simulation. E21 runs the SAME
// interval-management workload on the file-backed device (disk.FileDevice)
// and verifies the central claim of the persistence layer: the measured
// ios/op are identical on both backends (the structures are oblivious to
// the device), while the file-backed run adds a real durability cost
// (journal pre-images, checkpoint blobs, fsync) that is visible only in
// wall-clock time and in the separate journal counters.
//
// It also measures restartable serving: the cold-open cost of
// OpenAt — recovery, root reattachment, and the O(n/B) endpoint scan that
// rebuilds the id directory — in both block reads and wall-clock time, as
// a function of n.

import (
	"fmt"
	"io"
	"os"
	"time"

	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/workload"
)

// E21Intervals is the interval count of the E21 workload (flag -e21n).
var E21Intervals = 100000

func runE21(w io.Writer) {
	const (
		b       = 32
		queries = 2000
		span    = int64(1 << 20)
	)
	n := E21Intervals
	ivs := workload.UniformIntervals(77, n, span, span/64)
	qs := workload.StabQueries(79, queries, span)

	fmt.Fprintf(w, "B=%d, n=%d intervals, %d stab queries per backend.\n\n", b, n, queries)
	fmt.Fprintf(w, "%-22s %12s %12s %12s %12s\n",
		"backend", "build ms", "ios/query", "us/query", "t-check")

	type result struct {
		name     string
		buildMS  float64
		iosPerQ  float64
		usPerQ   float64
		reported int64
	}
	var results []result

	runQueries := func(m *intervals.Manager) (float64, float64, int64) {
		m.ResetStats()
		var reported int64
		start := time.Now()
		for _, q := range qs {
			m.Stab(q, func(geom.Interval) bool { reported++; return true })
		}
		elapsed := time.Since(start)
		st := m.Stats()
		return float64(st.IOs()) / float64(len(qs)),
			float64(elapsed.Microseconds()) / float64(len(qs)),
			reported
	}

	// Backend 1: the in-memory simulation (the PR 1-4 baseline).
	start := time.Now()
	sim := intervals.New(intervals.Config{B: b}, ivs)
	simBuild := time.Since(start)
	ios, us, rep := runQueries(sim)
	results = append(results, result{"simulated (Pager)", float64(simBuild.Milliseconds()), ios, us, rep})

	// Backend 2: file-backed, bare (every access a real page transfer).
	dir, err := os.MkdirTemp("", "ccidx-e21-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	start = time.Now()
	dur, err := intervals.CreateAt(dir, intervals.Config{B: b}, ivs, intervals.DurableOptions{})
	if err != nil {
		panic(err)
	}
	durBuild := time.Since(start)
	ios, us, rep = runQueries(dur)
	results = append(results, result{"durable (FileDevice)", float64(durBuild.Milliseconds()), ios, us, rep})

	// Backend 3: file-backed with the serving-layer buffer pool.
	dur.AttachPool(4096, 8)
	ios, us, rep = runQueries(dur)
	results = append(results, result{"durable + pool", 0, ios, us, rep})

	for _, r := range results {
		fmt.Fprintf(w, "%-22s %12.0f %12.2f %12.1f %12d\n",
			r.name, r.buildMS, r.iosPerQ, r.usPerQ, r.reported)
	}
	if results[0].iosPerQ != results[1].iosPerQ {
		fmt.Fprintf(w, "!! ios/query differs between simulated and durable backends\n")
	} else {
		fmt.Fprintf(w, "\nios/query identical on both backends: the structures are device-oblivious;\n"+
			"durability costs wall-clock only (plus journal/fsync overhead below).\n")
	}
	// Durability overhead of an incremental epoch: churn against the last
	// checkpoint (first-touch pre-images hit the rollback journal), then
	// checkpoint again.
	churn := workload.ChurnOps(81, workload.SeqIDs(n), uint64(n), n/10, span, span/64)
	start = time.Now()
	for _, op := range churn {
		switch op.Kind {
		case workload.ChurnInsert:
			dur.Insert(op.Iv)
		case workload.ChurnDelete:
			dur.Delete(op.ID)
		}
	}
	if err := dur.Checkpoint(); err != nil {
		panic(err)
	}
	epoch := time.Since(start)
	ja, syncs := dur.Files()[0].JournalStats()
	ja2, syncs2 := dur.Files()[1].JournalStats()
	fmt.Fprintf(w, "incremental epoch (%d churn ops + checkpoint) in %d ms:\n"+
		"durability overhead %d journal pre-images, %d fsyncs.\n\n",
		len(churn), epoch.Milliseconds(), ja+ja2, syncs+syncs2)

	// Cold-open: close, reopen — measuring recovery + the O(n/B)
	// directory-rebuild scan.
	if err := dur.CloseFiles(); err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "cold open", "n", "open I/Os", "open ms")
	for _, frac := range []int{4, 2, 1} {
		sub := ivs[:n/frac]
		subDir, err := os.MkdirTemp("", "ccidx-e21-open-*")
		if err != nil {
			panic(err)
		}
		m, err := intervals.CreateAt(subDir, intervals.Config{B: b}, sub, intervals.DurableOptions{})
		if err != nil {
			panic(err)
		}
		m.CloseFiles()
		start := time.Now()
		re, err := intervals.OpenAt(subDir, intervals.DurableOptions{})
		if err != nil {
			panic(err)
		}
		openMS := float64(time.Since(start).Microseconds()) / 1000
		st := re.Stats()
		fmt.Fprintf(w, "%-12s %12d %12d %12.1f\n", "", len(sub), st.IOs(), openMS)
		re.CloseFiles()
		os.RemoveAll(subDir)
	}
	fmt.Fprintf(w, "\nopen I/Os grow as O(n/B): recovery reads the superblock + state blob and\n"+
		"rebuilds the id directory with one endpoint leaf-chain scan.\n")
}
