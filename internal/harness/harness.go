// Package harness runs the reproduction experiments E1-E20 (see DESIGN.md
// for the mapping from the paper's theorems, lemmas and figures to
// experiment ids). E1-E15 print tables of measured block I/Os against the
// paper's bound formulas; E16-E17 measure the concurrent sharded serving
// layer; E18 ablates the read path; E19 measures churn through the weak
// delete + global rebuilding machinery; E20 measures batched query
// execution. EXPERIMENTS.md records the outputs.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"math/big"

	"ccidx/internal/classindex"
	"ccidx/internal/core"
	"ccidx/internal/cql"
	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/lowerbound"
	"ccidx/internal/pst"
	"ccidx/internal/threeside"
	"ccidx/internal/workload"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer)
}

// All returns the experiment registry in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Theorem 3.2: static metablock tree query I/O", runE1},
		{"E2", "Lemma 3.1: corner structure query and space", runE2},
		{"E3", "Theorem 3.7: semi-dynamic metablock inserts", runE3},
		{"E4", "Proposition 3.3: lower-bound adversary", runE4},
		{"E5", "Proposition 2.2: interval management vs naive", runE5},
		{"E6", "Theorem 2.6: simple class index", runE6},
		{"E7", "Lemma 4.1: external priority search tree", runE7},
		{"E8", "Lemma 4.3: 3-sided metablock tree", runE8},
		{"E9", "Theorem 4.7: rake-and-contract class index", runE9},
		{"E10", "Lemma 2.7: tessellation lower bound (Fig 7)", runE10},
		{"E11", "Theorem 2.8: class-indexing tessellation bound", runE11},
		{"E12", "Example 2.1: CQL rectangle intersection", runE12},
		{"E13", "Ablation: metablock tree without TS structures", runE13},
		{"E14", "Ablation: metablock tree without corner structures", runE14},
		{"E15", "Class indexing strategy matrix", runE15},
		{"E16", "Shard scaling: query throughput vs shard count", runE16},
		{"E17", "Batched insert amortization (group commit)", runE17},
		{"E18", "Read-path ablation: copy vs zero-copy view vs buffer pool", runE18},
		{"E19", "Churn: weak deletes + global rebuilding", runE19},
		{"E20", "Batched query execution: shared-traversal reads", runE20},
		{"E21", "Durable storage: cold-open I/O, durable vs simulated throughput", runE21},
		{"E22", "Serving front-end: adaptive auto-batching under concurrent load", runE22},
		{"E23", "Write-ahead logging: mutation overhead and recovery time", runE23},
		{"E24", "Replicated reads: router scaling and kill-one-replica availability", runE24},
		{"E25", "Write-optimized ingest: log-structured decomposition frontier", runE25},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func logB(n, b int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log(float64(n)) / math.Log(float64(b))
}

func log2(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// --- E1 ----------------------------------------------------------------------

func runE1(w io.Writer) {
	b := 16
	fmt.Fprintf(w, "B=%d, uniform diagonal points; 64 random corner queries per n.\n", b)
	fmt.Fprintf(w, "%8s %10s %10s %12s %14s\n", "n", "avg t", "avg I/O", "logB(n)+t/B", "I/O per unit")
	for _, n := range []int{1000, 4000, 16000, 64000, 256000} {
		tr := core.New(core.Config{B: b}, workload.DiagonalPoints(1, n, int64(4*n)))
		var ios, tt int64
		queries := 64
		for i := 0; i < queries; i++ {
			a := int64(i) * int64(4*n) / int64(queries)
			before := tr.Pager().Stats()
			tr.DiagonalQuery(a, func(geom.Point) bool { tt++; return true })
			ios += tr.Pager().Stats().Sub(before).IOs()
		}
		unit := logB(n, b) + float64(tt)/float64(queries)/float64(b)
		fmt.Fprintf(w, "%8d %10.1f %10.1f %12.1f %14.2f\n",
			n, float64(tt)/float64(queries), float64(ios)/float64(queries), unit,
			float64(ios)/float64(queries)/unit)
	}
	fmt.Fprintln(w, "shape check: I/O per unit must stay ~constant as n grows (Theorem 3.2).")
}

// --- E2 ----------------------------------------------------------------------

func runE2(w io.Writer) {
	fmt.Fprintf(w, "%4s %8s %12s %12s %14s\n", "B", "k", "starPts/k", "max I/O", "max 2t/B+c")
	for _, b := range []int{8, 16, 32} {
		tr := core.New(core.Config{B: b}, nil)
		k := 2 * b * b
		pts := workload.DiagonalPoints(2, k, int64(6*k))
		// Build a corner structure via a tree over exactly these points: the
		// root metablock of a small tree owns them all when k <= 2B^2... we
		// exercise it through stab queries on a dedicated tree instead.
		tr2 := core.New(core.Config{B: b}, pts)
		_ = tr
		maxRatio := 0.0
		worstIOs := int64(0)
		for q := 0; q < 200; q++ {
			a := int64(q) * int64(6*k) / 200
			before := tr2.Pager().Stats()
			t := 0
			tr2.DiagonalQuery(a, func(geom.Point) bool { t++; return true })
			ios := tr2.Pager().Stats().Sub(before).IOs()
			bound := 2*float64(t)/float64(b) + 12
			if r := float64(ios) / bound; r > maxRatio {
				maxRatio = r
				worstIOs = ios
			}
		}
		fmt.Fprintf(w, "%4d %8d %12s %12d %14.2f\n", b, k, "(see test)", worstIOs, maxRatio)
	}
	fmt.Fprintln(w, "Lemma 3.1's 2t/B+4 bound is asserted exhaustively in internal/core corner tests;")
	fmt.Fprintln(w, "here the end-to-end query cost on one-metablock trees confirms the constant.")
}

// --- E3 ----------------------------------------------------------------------

func runE3(w io.Writer) {
	b := 16
	fmt.Fprintf(w, "B=%d; amortized insert I/O over trailing 25%% of inserts.\n", b)
	fmt.Fprintf(w, "%8s %12s %18s %10s\n", "n", "I/O per ins", "logB+logB^2/B", "ratio")
	for _, n := range []int{4000, 16000, 64000, 128000} {
		tr := core.New(core.Config{B: b}, workload.DiagonalPoints(3, 3*n/4, 1<<30))
		before := tr.Pager().Stats()
		extra := workload.DiagonalPoints(4, n/4, 1<<30)
		for _, p := range extra {
			tr.Insert(p)
		}
		per := float64(tr.Pager().Stats().Sub(before).IOs()) / float64(len(extra))
		lb := logB(n, b)
		unit := lb + lb*lb/float64(b)
		fmt.Fprintf(w, "%8d %12.1f %18.1f %10.2f\n", n, per, unit, per/unit)
	}
	fmt.Fprintln(w, "shape check: ratio ~constant (Theorem 3.7, amortized).")
}

// --- E4 ----------------------------------------------------------------------

func runE4(w io.Writer) {
	b := 16
	fmt.Fprintf(w, "Proposition 3.3 adversary S={(x,x+1)}; singleton-output queries; B=%d.\n", b)
	fmt.Fprintf(w, "%8s %10s %12s %10s\n", "n", "avg I/O", "logB(n)", "ratio")
	for _, n := range []int{1000, 8000, 64000, 256000} {
		tr := core.New(core.Config{B: b}, workload.LowerBoundSet(n))
		qs := workload.LowerBoundQueries(n)
		var ios int64
		samples := 200
		for i := 0; i < samples; i++ {
			q := qs[i*len(qs)/samples]
			before := tr.Pager().Stats()
			cnt := 0
			tr.DiagonalQuery(q, func(geom.Point) bool { cnt++; return true })
			if cnt != 1 {
				fmt.Fprintf(w, "!! query %d returned %d points, want 1\n", q, cnt)
			}
			ios += tr.Pager().Stats().Sub(before).IOs()
		}
		fmt.Fprintf(w, "%8d %10.1f %12.1f %10.2f\n",
			n, float64(ios)/float64(samples), logB(n, b), float64(ios)/float64(samples)/logB(n, b))
	}
	fmt.Fprintln(w, "shape check: I/O grows with log_B n and the ratio stays ~constant;")
	fmt.Fprintln(w, "the structure meets the Omega(log_B n + t/B) lower bound within a constant.")
}

// --- E5 ----------------------------------------------------------------------

func runE5(w io.Writer) {
	b := 16
	n := 50000
	fmt.Fprintf(w, "n=%d short intervals, B=%d; 100 stabbing queries.\n", n, b)
	ivs := workload.UniformIntervals(5, n, 1<<30, 2000)
	mgr := intervals.New(intervals.Config{B: b}, ivs)
	nv := intervals.NewNaive(b)
	for _, iv := range ivs {
		nv.Insert(iv)
	}
	var mIOs, nIOs, tt int64
	for i := 0; i < 100; i++ {
		q := int64(i) * (1 << 30) / 100
		before := mgr.Stats()
		mgr.Stab(q, func(geom.Interval) bool { tt++; return true })
		mIOs += mgr.Stats().Sub(before).IOs()
		bn := nv.Pager().Stats()
		nv.Stab(q, func(geom.Interval) bool { return true })
		nIOs += nv.Pager().Stats().Sub(bn).IOs()
	}
	fmt.Fprintf(w, "%-22s %12s %12s\n", "structure", "avg I/O", "space(blk)")
	fmt.Fprintf(w, "%-22s %12.1f %12d\n", "interval manager", float64(mIOs)/100, mgr.SpaceBlocks())
	fmt.Fprintf(w, "%-22s %12.1f %12d\n", "naive scan", float64(nIOs)/100, nv.Pager().Allocated())
	fmt.Fprintf(w, "avg output t=%.1f; manager ~ log_B n + t/B = %.1f\n",
		float64(tt)/100, logB(n, b)+float64(tt)/100/float64(b))
	fmt.Fprintln(w, "shape check: manager beats the Theta(n/B) scan by orders of magnitude (Prop 2.2).")
}

// --- E6 ----------------------------------------------------------------------

func runE6(w io.Writer) {
	b := 16
	n := 20000
	fmt.Fprintf(w, "n=%d objects, B=%d; sweep over hierarchy size c; 100 queries each.\n", n, b)
	fmt.Fprintf(w, "%6s %12s %14s %10s %12s\n", "c", "avg qry I/O", "log2c*logB+t/B", "ratio", "space(blk)")
	for _, c := range []int{3, 15, 63, 255, 1023} {
		h := workload.RandomHierarchy(6, c)
		idx := classindex.NewSimple(h, b)
		objs := workload.Objects(7, h, n, 1<<20)
		for _, o := range objs {
			idx.Insert(o)
		}
		var ios, tt int64
		for i := 0; i < 100; i++ {
			cls := (i * 31) % c
			a1 := int64(i) * (1 << 20) / 100
			a2 := a1 + (1<<20)/20
			before := idx.Stats()
			idx.Query(cls, a1, a2, func(int64, uint64) bool { tt++; return true })
			ios += idx.Stats().Sub(before).IOs()
		}
		unit := log2(c)*logB(n, b) + float64(tt)/100/float64(b)
		fmt.Fprintf(w, "%6d %12.1f %14.1f %10.2f %12d\n",
			c, float64(ios)/100, unit, float64(ios)/100/unit, idx.SpaceBlocks())
	}
	fmt.Fprintln(w, "shape check: query I/O tracks log2(c)*log_B(n)+t/B; space grows with log2 c (Thm 2.6).")
}

// --- E7 ----------------------------------------------------------------------

func runE7(w io.Writer) {
	b := 16
	fmt.Fprintf(w, "B=%d, uniform points; 100 random 3-sided queries per n.\n", b)
	fmt.Fprintf(w, "%8s %10s %14s %10s\n", "n", "avg I/O", "log2n + t/B", "ratio")
	for _, n := range []int{1000, 8000, 64000, 256000} {
		tree := pst.Build(b, workload.UniformPoints(8, n, 1<<20))
		var ios, tt int64
		for i := 0; i < 100; i++ {
			x1 := int64(i) * (1 << 20) / 100
			q := geom.ThreeSidedQuery{X1: x1, X2: x1 + (1<<20)/50, Y: int64(i%100) * (1 << 20) / 100}
			before := tree.Pager().Stats()
			tree.Query(q, func(geom.Point) bool { tt++; return true })
			ios += tree.Pager().Stats().Sub(before).IOs()
		}
		unit := log2(n) + float64(tt)/100/float64(b)
		fmt.Fprintf(w, "%8d %10.1f %14.1f %10.2f\n", n, float64(ios)/100, unit, float64(ios)/100/unit)
	}
	fmt.Fprintln(w, "shape check: cost per (log2 n + t/B) unit ~constant (Lemma 4.1; log2, not logB).")
}

// --- E8 ----------------------------------------------------------------------

func runE8(w io.Writer) {
	b := 16
	fmt.Fprintf(w, "B=%d, uniform points; 100 random 3-sided queries per n.\n", b)
	fmt.Fprintf(w, "%8s %10s %20s %10s\n", "n", "avg I/O", "logBn+log2B+t/B", "ratio")
	for _, n := range []int{1000, 8000, 64000, 256000} {
		tree := threeside.New(threeside.Config{B: b}, workload.UniformPoints(9, n, 1<<20))
		var ios, tt int64
		for i := 0; i < 100; i++ {
			x1 := int64(i) * (1 << 20) / 100
			q := geom.ThreeSidedQuery{X1: x1, X2: x1 + (1<<20)/50, Y: int64(i%100) * (1 << 20) / 100}
			before := tree.Pager().Stats()
			tree.Query(q, func(geom.Point) bool { tt++; return true })
			ios += tree.Pager().Stats().Sub(before).IOs()
		}
		unit := logB(n, b) + log2(b) + float64(tt)/100/float64(b)
		fmt.Fprintf(w, "%8d %10.1f %20.1f %10.2f\n", n, float64(ios)/100, unit, float64(ios)/100/unit)
	}
	fmt.Fprintln(w, "shape check: the log_B n + log2 B shape of Lemma 4.3 (vs E7's log2 n).")
}

// --- E9 ----------------------------------------------------------------------

func runE9(w io.Writer) {
	b := 16
	n := 20000
	fmt.Fprintf(w, "n=%d objects, B=%d; rake-and-contract vs simple index; 100 queries each.\n", n, b)
	fmt.Fprintf(w, "%6s %14s %14s %14s %14s\n", "c", "rake qry I/O", "simple qry I/O", "rake space", "simple space")
	for _, c := range []int{15, 63, 255, 1023} {
		h := workload.RandomHierarchy(10, c)
		rc := classindex.NewRakeContract(h, b)
		si := classindex.NewSimple(h, b)
		objs := workload.Objects(11, h, n, 1<<20)
		for _, o := range objs {
			rc.Insert(o)
			si.Insert(o)
		}
		var rcIOs, siIOs int64
		for i := 0; i < 100; i++ {
			cls := (i * 17) % c
			a1 := int64(i) * (1 << 20) / 100
			a2 := a1 + (1<<20)/20
			before := rc.Stats()
			rc.Query(cls, a1, a2, func(int64, uint64) bool { return true })
			rcIOs += rc.Stats().Sub(before).IOs()
			before = si.Stats()
			si.Query(cls, a1, a2, func(int64, uint64) bool { return true })
			siIOs += si.Stats().Sub(before).IOs()
		}
		fmt.Fprintf(w, "%6d %14.1f %14.1f %14d %14d\n",
			c, float64(rcIOs)/100, float64(siIOs)/100, rc.SpaceBlocks(), si.SpaceBlocks())
	}
	fmt.Fprintln(w, "shape check: the simple index degrades with log2 c while rake-and-contract")
	fmt.Fprintln(w, "stays flat in c (Theorem 4.7 vs Theorem 2.6), at comparable space.")
}

// --- E10 / E11 ---------------------------------------------------------------

func runE10(w io.Writer) {
	fmt.Fprintln(w, "Lemma 2.7 strategies (waste = blocks touched per q/B needed):")
	for _, b := range []int{4, 16, 64, 256} {
		p := 4 * b
		for _, r := range lowerbound.StrategyReports(p, b) {
			fmt.Fprintf(w, "  %v (sqrt B = %.1f)\n", r, math.Sqrt(float64(b)))
		}
	}
	fmt.Fprintln(w, "Exhaustive optimum on Fig 7's 8x8 grid with B=4:")
	best, count := lowerbound.OptimalSearch(8, 4)
	fmt.Fprintf(w, "  %d tessellations examined; optimal waste %.2f >= sqrt(B) = 2\n", count, best)
	fmt.Fprintln(w, "shape check: no strategy, including the true optimum, achieves constant waste;")
	fmt.Fprintln(w, "max(row,col) waste >= sqrt(B), matching the k^2 >= B contradiction of Lemma 2.7.")
}

func runE11(w io.Writer) {
	fmt.Fprintln(w, "Theorem 2.8: a star hierarchy with c leaves maps class indexing onto a c x p grid;")
	fmt.Fprintln(w, "the Lemma 2.7 measurement applies verbatim with rows = classes:")
	for _, c := range []int{16, 64} {
		b := c / 4 * 4
		if b < 4 {
			b = 4
		}
		for _, r := range lowerbound.StrategyReports(c, b) {
			fmt.Fprintf(w, "  c=p=%d: %v\n", c, r)
		}
	}
	fmt.Fprintln(w, "With one copy per object and rectangular blocks, some class query misses the")
	fmt.Fprintln(w, "k*q/B bound for every fixed k — hence the replicated designs of Sections 2.2/4.")
}

// --- E12 ---------------------------------------------------------------------

func runE12(w io.Writer) {
	// Measured in the cql package through the generalized index; here we
	// report the end-to-end I/O for the Example 2.1 workload.
	fmt.Fprintln(w, "Example 2.1: all intersecting rectangle pairs through the generalized index.")
	fmt.Fprintln(w, "(correctness asserted against exhaustive geometry in internal/cql tests)")
	fmt.Fprintf(w, "%8s %10s %14s\n", "rects", "pairs", "index I/O")
	for _, n := range []int{100, 400, 1600} {
		rects := makeRects(12, n)
		rel := rectRelationIOs(rects)
		fmt.Fprintf(w, "%8d %10d %14d\n", n, rel.pairs, rel.ios)
	}
	fmt.Fprintln(w, "shape check: I/O grows ~linearly in output pairs + n log_B n, not n^2.")
}

type rectResult struct {
	pairs int
	ios   int64
}

// rectRelationIOs runs the Example 2.1 query through the generalized index,
// measuring index I/O.
func rectRelationIOs(rects []geom.Rect) rectResult {
	rel := cql.RectRelation(rects)
	idx := cql.NewGeneralizedIndex(rel, cql.RectVarX, cql.Config{B: 16})
	byName := make(map[uint64]cql.Conj, len(rects))
	for _, c := range rel.Conjs {
		byName[c.ID] = c
	}
	var res rectResult
	before := idx.Stats()
	for _, rc := range rects {
		t1 := byName[rc.Name]
		cands := idx.Select(new(big.Rat).SetInt64(rc.X1), new(big.Rat).SetInt64(rc.X2))
		for _, t2 := range cands.Conjs {
			if t2.ID <= rc.Name {
				continue
			}
			joint := t1
			for _, a := range byName[t2.ID].Atoms {
				if a.Var != cql.RectVarZ {
					joint = joint.And(a)
				}
			}
			if joint.Satisfiable() {
				res.pairs++
			}
		}
	}
	res.ios = idx.Stats().Sub(before).IOs()
	return res
}

func makeRects(seed int64, n int) []geom.Rect {
	pts := workload.UniformPoints(seed, n, 10000)
	rects := make([]geom.Rect, n)
	for i, p := range pts {
		rects[i] = geom.Rect{Name: uint64(i + 1), X1: p.X, Y1: p.Y, X2: p.X + 200, Y2: p.Y + 200}
	}
	return rects
}

// --- E13 / E14 (ablations) ---------------------------------------------------

func runE13(w io.Writer) {
	b := 16
	n := 64000
	fmt.Fprintf(w, "Comb point set, B=%d, n=%d: many Type IV siblings per level.\n", b, n)
	// One point in 16 rises a bounded height M above the diagonal, the
	// rest hug it. Because the offset is bounded, the raised points stay in
	// their leaves (the global top-B^2 selection prefers larger x, not the
	// local spikes), so ~M/childWidth children straddle every query line
	// while holding only a few answers each — the exact situation the TS
	// structures amortize (Theorem 3.2's Type IV accounting).
	const spikeM = 200000
	pts := make([]geom.Point, n)
	for i := range pts {
		x := int64(i) * 16
		y := x + int64(i%13)
		if i%16 == 0 {
			y = x + spikeM
		}
		pts[i] = geom.Point{X: x, Y: y, ID: uint64(i)}
	}
	full := core.New(core.Config{B: b}, pts)
	noTS := core.New(core.Config{B: b, DisableTS: true}, pts)
	var fullIOs, noIOs int64
	for i := 0; i < 100; i++ {
		a := int64(i)*16*int64(n)/100 + 3
		before := full.Pager().Stats()
		full.DiagonalQuery(a, func(geom.Point) bool { return true })
		fullIOs += full.Pager().Stats().Sub(before).IOs()
		before = noTS.Pager().Stats()
		noTS.DiagonalQuery(a, func(geom.Point) bool { return true })
		noIOs += noTS.Pager().Stats().Sub(before).IOs()
	}
	fmt.Fprintf(w, "with TS structures:    %8.1f I/O per query\n", float64(fullIOs)/100)
	fmt.Fprintf(w, "without TS structures: %8.1f I/O per query\n", float64(noIOs)/100)
	fmt.Fprintln(w, "note: the TS saving is a per-level constant-vs-B effect; when the t/B")
	fmt.Fprintln(w, "output term dominates (as here) the delta is small by design — the")
	fmt.Fprintln(w, "amortization argument of Theorem 3.2 charges exactly those reads to the")
	fmt.Fprintln(w, "output. The worst-case role of TS is exercised by the bound assertions")
	fmt.Fprintln(w, "in internal/core (TestStaticQueryIOBound).")
}

func runE14(w io.Writer) {
	b := 64
	n := b * b // a single metablock: Lemma 3.1 applies within one node
	fmt.Fprintf(w, "Single metablock with mixed-height columns, B=%d, n=%d.\n", b, n)
	// Every vertical B-chunk contains one point far above the diagonal, so
	// each chunk straddles each query line: the vertical-scan fallback
	// reads every chunk left of the corner, while the corner structure of
	// Lemma 3.1 pays 2t/B + O(1).
	pts := make([]geom.Point, n)
	for i := range pts {
		x := int64(i) * 4
		y := x + int64(i%13)
		if i%b == 0 {
			y = x + (1 << 20)
		}
		pts[i] = geom.Point{X: x, Y: y, ID: uint64(i)}
	}
	full := core.New(core.Config{B: b}, pts)
	noCorner := core.New(core.Config{B: b, DisableCorner: true}, pts)
	var fullIOs, noIOs int64
	for i := 0; i < 100; i++ {
		a := int64(i)*4*int64(n)/100 + 1
		before := full.Pager().Stats()
		full.DiagonalQuery(a, func(geom.Point) bool { return true })
		fullIOs += full.Pager().Stats().Sub(before).IOs()
		before = noCorner.Pager().Stats()
		noCorner.DiagonalQuery(a, func(geom.Point) bool { return true })
		noIOs += noCorner.Pager().Stats().Sub(before).IOs()
	}
	fmt.Fprintf(w, "with corner structures:    %8.1f I/O per query\n", float64(fullIOs)/100)
	fmt.Fprintf(w, "without corner structures: %8.1f I/O per query\n", float64(noIOs)/100)
	fmt.Fprintln(w, "shape check: without Lemma 3.1 the Type II metablock degrades toward Theta(B)")
	fmt.Fprintln(w, "wasted blocks per query.")
}

// --- E15 ---------------------------------------------------------------------

func runE15(w io.Writer) {
	b := 16
	n := 20000
	c := 255
	h := workload.RandomHierarchy(15, c)
	objs := workload.Objects(16, h, n, 1<<20)
	type strat struct {
		name string
		idx  interface {
			Insert(classindex.Object)
			Query(int, int64, int64, classindex.EmitObject)
		}
		stats func() disk.Stats
		space func() int64
	}
	si := classindex.NewSimple(h, b)
	fe := classindex.NewFullExtent(h, b)
	st := classindex.NewSingleTreeFilter(h, b)
	et := classindex.NewExtentTrees(h, b)
	rc := classindex.NewRakeContract(h, b)
	strategies := []strat{
		{"simple (Thm 2.6)", si, si.Stats, si.SpaceBlocks},
		{"full-extent (L 4.2)", fe, fe.Stats, fe.SpaceBlocks},
		{"single-tree filter", st, st.Stats, st.SpaceBlocks},
		{"extent trees", et, et.Stats, et.SpaceBlocks},
		{"rake-contract (4.7)", rc, rc.Stats, rc.SpaceBlocks},
	}
	var insIOs []float64
	for _, s := range strategies {
		before := s.stats()
		for _, o := range objs {
			s.idx.Insert(o)
		}
		insIOs = append(insIOs, float64(s.stats().Sub(before).IOs())/float64(len(objs)))
	}
	fmt.Fprintf(w, "n=%d, c=%d, B=%d; 100 full-extent range queries.\n", n, c, b)
	fmt.Fprintf(w, "%-22s %12s %12s %12s\n", "strategy", "qry I/O", "ins I/O", "space(blk)")
	for si2, s := range strategies {
		var ios int64
		for i := 0; i < 100; i++ {
			cls := (i * 13) % c
			a1 := int64(i) * (1 << 20) / 100
			a2 := a1 + (1<<20)/20
			before := s.stats()
			s.idx.Query(cls, a1, a2, func(int64, uint64) bool { return true })
			ios += s.stats().Sub(before).IOs()
		}
		fmt.Fprintf(w, "%-22s %12.1f %12.1f %12d\n", s.name, float64(ios)/100, insIOs[si2], s.space())
	}
	fmt.Fprintln(w, "shape check (Section 2.2's discussion): the filter baseline wins no column;")
	fmt.Fprintln(w, "full extents buy queries with space; Thm 4.7 balances all three.")
}

// SortExperimentIDs returns all ids sorted (helper for CLIs).
func SortExperimentIDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
