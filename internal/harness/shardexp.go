package harness

// Shard-layer experiments (E16, E17). Unlike E1-E15, which reproduce the
// paper's asymptotic bounds in the block-I/O cost model alone, these
// measure the concurrent serving layer of internal/shard: wall-clock
// throughput under goroutine concurrency alongside the usual I/O
// accounting. The absolute ns figures vary by machine; the shapes —
// throughput scaling with shard count under range partitioning, median
// insert latency collapsing with the group-commit batch — are the
// reproducible claims.

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ccidx/internal/geom"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

// Sweeps used by E16/E17; cmd/experiments overrides them with the -shards
// and -batch flags.
var (
	// ShardCounts is the shard-count sweep of E16.
	ShardCounts = []int{1, 2, 4, 8}
	// BatchSizes is the group-commit sweep of E17.
	BatchSizes = []int{1, 16, 256}
)

const (
	e16Span    = int64(1 << 20)
	e16Workers = 8
	e16MaxLen  = 4000
)

// runE16 measures mixed insert/query throughput against shard count. The
// workload is query-heavy serving traffic: each worker interleaves one
// insert per eight stabbing queries.
//
// Range partitioning slices the key domain, so a stabbing query touches
// exactly one shard: different workers hit different shards and aggregate
// throughput scales. Hash partitioning must fan every query out to all
// shards — it parallelizes one query's latency, not throughput — and is
// included as the contrast row block.
func runE16(w io.Writer) {
	n := 100000
	ops := 4000 // per worker
	base := workload.UniformIntervals(16, n, e16Span, e16MaxLen)
	fmt.Fprintf(w, "n=%d intervals, B=16; %d workers x %d ops, 1 insert per 8 queries.\n",
		n, e16Workers, ops)
	for _, part := range []struct {
		name string
		p    shard.Partition
	}{
		{"range (domain slices, stab touches 1 shard)", shard.PartitionRange},
		{"hash (fan-out to all shards per query)", shard.PartitionHash},
	} {
		fmt.Fprintf(w, "%s partitioning: %s\n", map[shard.Partition]string{
			shard.PartitionRange: "range", shard.PartitionHash: "hash"}[part.p], part.name)
		fmt.Fprintf(w, "%7s %12s %12s %12s %12s %10s\n",
			"shards", "ops/sec", "ns/op", "ios/op", "space(blk)", "speedup")
		var baseline float64
		for _, shards := range ShardCounts {
			s := shard.NewIntervals(shard.Config{
				Shards: shards, B: 16, Batch: 16, Partition: part.p, Span: e16Span,
			}, base)
			before := s.Stats()
			elapsed := driveMixed(s, e16Workers, ops)
			total := float64(e16Workers * ops)
			opsPerSec := total / elapsed.Seconds()
			if baseline == 0 {
				baseline = opsPerSec
			}
			fmt.Fprintf(w, "%7d %12.0f %12.0f %12.1f %12d %9.2fx\n",
				shards, opsPerSec, float64(elapsed.Nanoseconds())/total,
				float64(s.Stats().Sub(before).IOs())/total, s.SpaceBlocks(),
				opsPerSec/baseline)
		}
	}
	fmt.Fprintln(w, "shape check: under range partitioning ops/sec grows with the shard count and")
	fmt.Fprintln(w, "ios/op shrinks (each shard's log_B term covers n/N intervals), at the price of")
	fmt.Fprintln(w, "slice-spanning replicas in the space column; hash fan-out pays the full log_B")
	fmt.Fprintln(w, "cost in every shard and does not scale aggregate throughput.")
}

// driveMixed runs the E16 worker pool and returns the elapsed wall time.
func driveMixed(s *shard.Intervals, workers, ops int) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < ops; i++ {
				if i%8 == 7 {
					lo := rng.Int63n(e16Span)
					// High-bit offset keeps worker ids disjoint from the
					// base set's 0..n-1 (live duplicate ids panic).
					s.Insert(geom.Interval{Lo: lo, Hi: lo + rng.Int63n(e16MaxLen), ID: uint64(1)<<32 | uint64(g*ops+i)})
					continue
				}
				s.Stab(rng.Int63n(e16Span), func(geom.Interval) bool { return true })
			}
		}(g)
	}
	wg.Wait()
	return time.Since(start)
}

// runE17 measures what group commit actually buys: the insert CALL's
// latency distribution. With batch k, k-1 of every k calls return after an
// O(1) buffer append and only the k-th pays the deferred index
// maintenance, so the median collapses while the total work — and the
// amortized block I/O — is unchanged. Queries stay correct throughout
// because they merge the pending buffer.
func runE17(w io.Writer) {
	total := 40000
	per := total / e16Workers
	fmt.Fprintf(w, "4 shards, B=16, range partitioning; %d workers inserting %d intervals total.\n",
		e16Workers, total)
	fmt.Fprintf(w, "latency of individual Insert calls (the group-commit amortization):\n")
	fmt.Fprintf(w, "%7s %12s %14s %12s %12s %12s\n",
		"batch", "ins/sec", "ios/insert", "p50 ns", "p99 ns", "max ns")
	for _, batch := range BatchSizes {
		s := shard.NewIntervals(shard.Config{
			Shards: 4, B: 16, Batch: batch, Partition: shard.PartitionRange, Span: e16Span,
		}, nil)
		before := s.Stats()
		lat := make([][]int64, e16Workers)
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < e16Workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(2000 + g)))
				ls := make([]int64, per)
				for i := 0; i < per; i++ {
					lo := rng.Int63n(e16Span)
					iv := geom.Interval{Lo: lo, Hi: lo + rng.Int63n(e16MaxLen), ID: uint64(g*per + i)}
					t0 := time.Now()
					s.Insert(iv)
					ls[i] = time.Since(t0).Nanoseconds()
				}
				lat[g] = ls
			}(g)
		}
		wg.Wait()
		s.Flush()
		elapsed := time.Since(start)
		var all []int64
		for _, ls := range lat {
			all = append(all, ls...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(p float64) int64 { return all[int(p*float64(len(all)-1))] }
		nTotal := float64(len(all))
		fmt.Fprintf(w, "%7d %12.0f %14.1f %12d %12d %12d\n",
			batch, nTotal/elapsed.Seconds(),
			float64(s.Stats().Sub(before).IOs())/nTotal,
			q(0.50), q(0.99), all[len(all)-1])
	}
	fmt.Fprintln(w, "shape check: p50 collapses to a buffer append as the batch grows while")
	fmt.Fprintln(w, "ios/insert stays ~flat — group commit defers maintenance off the common path,")
	fmt.Fprintln(w, "it does not remove block I/O; the max column is the deferred flush bill.")
}
