package harness

// E19: churn — weak deletes + global rebuilding on the interval manager.
// The paper's metablock structures are semi-dynamic (deletion is its closing
// open problem); the engineering answer implemented in this repository is
// per-record tombstones filtered by the query emit funnel plus a full static
// rebuild once tombstones exceed alpha = 1/2 of the live count (see
// DESIGN.md). The reproducible claims measured here:
//
//   - amortized delete I/O stays within a small constant factor of insert
//     I/O at every scale (the tombstone is free; the B+-tree delete and the
//     rebuild share are the whole bill);
//   - query I/O under churn keeps the O(log_B n + t/B) shape — the physical
//     structure a query walks is never more than 1.5x the live set;
//   - space tracks the live count instead of the insert-ever count.

import (
	"fmt"
	"io"

	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/workload"
)

func runE19(w io.Writer) {
	b := 16
	const maxLenDiv = 256 // interval length <= span/256 keeps outputs small
	fmt.Fprintf(w, "B=%d; static build of n intervals, then 2n churn ops (3 ins : 3 del : 2 qry).\n", b)
	fmt.Fprintf(w, "%8s %10s %10s %10s %10s %9s %12s %12s\n",
		"n", "ins I/O", "del I/O", "del/ins", "qry I/O", "rebuilds", "blk before", "blk after")
	for _, n := range []int{4000, 16000, 64000} {
		span := int64(64 * n)
		maxLen := span / maxLenDiv
		ivs := workload.UniformIntervals(19, n, span, maxLen)
		mgr := intervals.New(intervals.Config{B: b}, ivs)
		ops := workload.ChurnOps(190+int64(n), workload.SeqIDs(n), uint64(n), 2*n, span, maxLen)
		spaceBefore := mgr.SpaceBlocks()

		var insIOs, delIOs, qryIOs int64
		var insN, delN, qryN int64
		for _, op := range ops {
			before := mgr.Stats()
			switch op.Kind {
			case workload.ChurnInsert:
				mgr.Insert(op.Iv)
				insIOs += mgr.Stats().Sub(before).IOs()
				insN++
			case workload.ChurnDelete:
				if !mgr.Delete(op.ID) {
					panic("E19: churn stream deleted an absent id")
				}
				delIOs += mgr.Stats().Sub(before).IOs()
				delN++
			case workload.ChurnStab:
				mgr.Stab(op.Q, func(geom.Interval) bool { return true })
				qryIOs += mgr.Stats().Sub(before).IOs()
				qryN++
			case workload.ChurnIntersect:
				mgr.Intersect(op.QIv, func(geom.Interval) bool { return true })
				qryIOs += mgr.Stats().Sub(before).IOs()
				qryN++
			}
		}
		insPer := float64(insIOs) / float64(insN)
		delPer := float64(delIOs) / float64(delN)
		qryPer := float64(qryIOs) / float64(qryN)
		fmt.Fprintf(w, "%8d %10.1f %10.1f %10.2f %10.1f %9d %12d %12d\n",
			n, insPer, delPer, delPer/insPer, qryPer, mgr.Rebuilds(),
			spaceBefore, mgr.SpaceBlocks())
	}
	fmt.Fprintln(w, "shape check: del/ins stays a small constant across scales (the delete is a")
	fmt.Fprintln(w, "B+-tree delete + a free tombstone + an amortized rebuild share, Lemma 3.6-style")
	fmt.Fprintln(w, "charging); rebuilds fire at the alpha threshold and keep space ~ live count.")
}
