package harness

// E20: batched query execution — the read-side dual of E17's group commit.
// The identical stabbing-query stream runs against the sharded serving
// layer sequentially (one Stab per call) and batched (StabBatch) at batch
// sizes 1..1024, measuring device I/Os per query, allocations per query
// and throughput.
//
// The workload is E16-style: uniform intervals over a range-partitioned
// sharded manager, stabbing floods — with interval lengths at a quarter of
// E16's so the O(log_B n) search term, the part a shared traversal can
// amortize, dominates the un-amortizable output term t/B (longer intervals
// only raise that floor; the amortization of the search term is identical).
// Pooling is DISABLED (PoolFrames -1, the paper's bare
// every-access-is-an-I/O cost model) so the shared-traversal saving is
// visible in the I/O counters themselves rather than hidden behind buffer
// pool hits: sequentially, every query re-reads the structure's upper
// levels and replays the pending op log; batched, each shard-group pays
// those once per batch. The reproducible shapes: ios/query and
// allocs/query fall monotonically with the batch size (>= 2x fewer I/Os
// per query by batch 256), and batch=1 costs the sequential path's I/Os.

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"ccidx/internal/geom"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

// E20BatchSizes is the batch-size sweep of E20; cmd/experiments overrides
// it with the -qbatch flag.
var E20BatchSizes = []int{1, 4, 16, 64, 256, 1024}

// E20Intervals scales the E20 interval count; cmd/experiments overrides it
// with -e20n (the CI smoke run uses a small value).
var E20Intervals = 100000

func runE20(w io.Writer) {
	n := E20Intervals
	const shards = 4
	nq := 8192
	if nq > 4*n {
		nq = 4 * n
	}
	s := shard.NewIntervals(shard.Config{
		Shards: shards, B: 16, Batch: 16, Partition: shard.PartitionRange,
		Span: e16Span, PoolFrames: -1,
	}, workload.UniformIntervals(20, n, e16Span, e16MaxLen/4))
	// A sprinkle of extra inserts keeps the pending op logs non-empty, so
	// the per-batch (vs per-query) replay is part of what is measured.
	for i, iv := range workload.UniformIntervals(21, 64, e16Span, e16MaxLen) {
		iv.ID = uint64(1)<<40 | uint64(i)
		s.Insert(iv)
	}
	qs := workload.StabQueries(22, nq, e16Span)

	fmt.Fprintf(w, "E16-style workload: n=%d uniform intervals (maxLen %d), B=16, %d range shards, pools off;\n",
		n, e16MaxLen/4, shards)
	fmt.Fprintf(w, "%d stabbing queries, identical stream per row.\n", nq)
	fmt.Fprintf(w, "%10s %12s %12s %12s %12s %10s\n",
		"batch", "qry/sec", "ios/query", "allocs/query", "t/query", "vs seq")

	var results int64
	emit := func(int, geom.Interval) bool { results++; return true }
	run := func(label string, batch int) (iosPer, allocsPer float64) {
		results = 0
		before := s.Stats()
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if batch == 0 {
			for _, q := range qs {
				s.Stab(q, func(iv geom.Interval) bool { results++; return true })
			}
		} else {
			for _, b := range workload.QueryBatches(qs, batch) {
				s.StabBatch(b, emit)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		ios := s.Stats().Sub(before).IOs()
		fq := float64(nq)
		iosPer = float64(ios) / fq
		allocsPer = float64(ms1.Mallocs-ms0.Mallocs) / fq
		fmt.Fprintf(w, "%10s %12.0f %12.2f %12.1f %12.1f", label,
			fq/elapsed.Seconds(), iosPer, allocsPer, float64(results)/fq)
		return iosPer, allocsPer
	}

	seqIOs, _ := run("seq", 0)
	fmt.Fprintf(w, "%10s\n", "1.00x")
	for _, k := range E20BatchSizes {
		iosPer, _ := run(fmt.Sprintf("%d", k), k)
		fmt.Fprintf(w, "%9.2fx\n", seqIOs/iosPer)
	}
	fmt.Fprintln(w, "shape check: ios/query and allocs/query fall monotonically with the batch")
	fmt.Fprintln(w, "size — the log_B search term, the lock acquisitions and the pending-log")
	fmt.Fprintln(w, "replays amortize across the batch — while t/query stays identical (the")
	fmt.Fprintln(w, "batched path answers exactly the sequential multiset per query). The")
	fmt.Fprintln(w, "residual floor is the output's own t/B plus the per-shard leaf touches.")
}
