package harness

// E22 — Serving front-end: adaptive auto-batching under concurrent load.
//
// E20 showed that the shard layer's batch entry points share traversals
// and pay far fewer I/Os per query than sequential calls — but only for
// callers that ARRIVE with a batch in hand. E22 closes the loop for the
// serving path: independent concurrent clients issue SINGLE stabbing
// queries over HTTP, and the server's auto-batcher coalesces them into
// StabBatch calls behind their backs. Measured per (batching arm x client
// count): throughput, client-observed p50/p99 latency, mean coalesced
// batch size, and ios/query from the backend's counters — the experiment's
// claim is that ios/query under concurrency drops materially with batching
// ON while answers stay byte-identical (oracle-checked through HTTP first).
//
// The backend runs with buffer pools DISABLED so every page access counts,
// the paper's bare cost model: the ios/query column then isolates the
// shared-traversal effect from caching.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccidx/internal/geom"
	"ccidx/internal/server"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

// E22Intervals is the interval count of the E22 workload (flag -e22n).
var E22Intervals = 50000

func runE22(w io.Writer) {
	const (
		b          = 32
		perClient  = 300
		oracleQs   = 64
		maxClients = 256
	)
	n := E22Intervals
	span := int64(n) * 16
	ivs := workload.UniformIntervals(91, n, span, span/64)

	im := shard.NewIntervals(shard.Config{
		Shards: 4, B: b, Batch: 32,
		Partition: shard.PartitionRange, Span: span, PoolFrames: -1,
	}, ivs)
	fmt.Fprintf(w, "n=%d intervals, 4 shards, B=%d, pools off; %d stab queries per client.\n\n",
		n, b, perClient)

	// Oracle first: answers through the batching server must equal the
	// sequential backend call, query by query.
	srv, base, stop := startServer(im, false)
	mismatches := 0
	rng := rand.New(rand.NewSource(93))
	for i := 0; i < oracleQs; i++ {
		q := rng.Int63n(span)
		var want []uint64
		im.Stab(q, func(iv geom.Interval) bool { want = append(want, iv.ID); return true })
		got, err := httpStabIDs(base, q)
		if err != nil {
			panic(err)
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if !uint64sEqual(got, want) {
			mismatches++
		}
	}
	stop()
	_ = srv
	if mismatches > 0 {
		fmt.Fprintf(w, "!! %d/%d oracle queries differ between HTTP-batched and sequential answers\n",
			mismatches, oracleQs)
	} else {
		fmt.Fprintf(w, "oracle: %d HTTP answers identical to sequential backend calls.\n\n", oracleQs)
	}

	fmt.Fprintf(w, "%-10s %8s %12s %10s %10s %10s %10s\n",
		"batching", "clients", "req/s", "p50 us", "p99 us", "batch avg", "ios/query")
	type cell struct {
		on      bool
		clients int
		ios     float64
	}
	var cells []cell
	for _, on := range []bool{false, true} {
		for clients := 1; clients <= maxClients; clients *= 4 {
			srv, base, stop := startServer(im, !on)
			before := im.Stats().IOs()
			total := clients * perClient
			lats := make([]time.Duration, total)
			var next atomic.Int64
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					crng := rand.New(rand.NewSource(int64(1000 + c)))
					client := &http.Client{}
					for {
						i := int(next.Add(1)) - 1
						if i >= total {
							return
						}
						t0 := time.Now()
						if _, err := httpStabIDsWith(client, base, crng.Int63n(span)); err != nil {
							panic(err)
						}
						lats[i] = time.Since(t0)
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			ios := float64(im.Stats().IOs()-before) / float64(total)
			sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
			mode := "off"
			if on {
				mode = "on"
			}
			fmt.Fprintf(w, "%-10s %8d %12.0f %10.0f %10.0f %10.1f %10.2f\n",
				mode, clients,
				float64(total)/elapsed.Seconds(),
				float64(lats[total/2].Microseconds()),
				float64(lats[total*99/100].Microseconds()),
				srv.BatchMean(), ios)
			cells = append(cells, cell{on, clients, ios})
			stop()
		}
	}

	var offHi, onHi float64
	for _, c := range cells {
		if c.clients == maxClients {
			if c.on {
				onHi = c.ios
			} else {
				offHi = c.ios
			}
		}
	}
	fmt.Fprintf(w, "\nat %d clients: ios/query %.2f unbatched vs %.2f auto-batched (%.1fx lower).\n",
		maxClients, offHi, onHi, offHi/onHi)
	fmt.Fprintln(w, "shape check: the auto-batcher converts concurrent single-query traffic into")
	fmt.Fprintln(w, "shared traversals — ios/query falls toward E20's in-process batch numbers as")
	fmt.Fprintln(w, "concurrency grows, while the single-client arms stay near the sequential cost.")
}

// startServer brings up an in-process front-end on a loopback port and
// returns the server handle, base URL, and a stop closure. The batching
// arm runs a 2ms window: at this workload's per-query cost the offered
// rates sit near the adaptive window's open threshold with the 1ms
// default, and 2ms keeps the latency tax bounded while letting the
// coalescing effect show (the off arm never waits regardless).
func startServer(im *shard.Intervals, disableBatching bool) (*server.Server, string, func()) {
	srv, err := server.New(server.Backend{Intervals: im}, server.Config{
		MaxWait:         2 * time.Millisecond,
		DisableBatching: disableBatching,
	})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		hs.Close()
		srv.Close()
	}
	return srv, "http://" + ln.Addr().String(), stop
}

func httpStabIDs(base string, q int64) ([]uint64, error) {
	return httpStabIDsWith(http.DefaultClient, base, q)
}

func httpStabIDsWith(client *http.Client, base string, q int64) ([]uint64, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/stab?q=%d", base, q))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stab(%d): %s", q, resp.Status)
	}
	var rows []struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return nil, err
	}
	ids := make([]uint64, len(rows))
	for i, r := range rows {
		ids[i] = r.ID
	}
	return ids, nil
}

func uint64sEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
