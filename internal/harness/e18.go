package harness

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"ccidx/internal/core"
	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/workload"
)

// E18 — the read-path ablation behind PR 2: the paper's cost model counts
// block transfers, but a reproduction also pays host-side costs on every
// transfer. Three read paths over the identical metablock tree and query
// stream:
//
//	copy   — every page read materializes a fresh PageSize buffer and
//	         memcpy (the pre-PR-2 behaviour, reconstructed by copyDevice);
//	view   — zero-copy borrowed views straight into the pager's storage
//	         (the current default for every structure);
//	pooled — views through a concurrent CLOCK buffer pool, so repeated
//	         reads hit memory-resident frames without device I/O.
//
// Device I/Os are identical for copy and view (the cost model is
// untouched); the pool trades device reads for frame hits. Wall-clock and
// allocations are where the three separate.

// copyDevice reproduces the pre-PR-2 read path: View allocates a fresh
// buffer and copies the page into it, exactly like the old
// make+Pager.Read call sites.
type copyDevice struct {
	p disk.Store
}

func (c copyDevice) PageSize() int                          { return c.p.PageSize() }
func (c copyDevice) Alloc() disk.BlockID                    { return c.p.Alloc() }
func (c copyDevice) Read(id disk.BlockID, buf []byte) error { return c.p.Read(id, buf) }
func (c copyDevice) Write(id disk.BlockID, buf []byte) error {
	return c.p.Write(id, buf)
}
func (c copyDevice) Free(id disk.BlockID) error { return c.p.Free(id) }
func (c copyDevice) View(id disk.BlockID) ([]byte, error) {
	buf := make([]byte, c.p.PageSize())
	if err := c.p.Read(id, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
func (c copyDevice) Release(disk.BlockID) {}

func runE18(w io.Writer) {
	const (
		b       = 32
		n       = 100000
		queries = 2000
		// frames is sized like a real buffer pool: a constant fraction of
		// the data (~half the tree's pages), not O(1). Undersizing it to,
		// say, 512 frames thrashes the CLOCK on this access pattern and
		// the hit rate collapses — worth reproducing by hand, not worth
		// printing as the headline.
		frames = 4096
	)
	fmt.Fprintf(w, "B=%d, n=%d diagonal points; %d stab queries per read path.\n", b, n, queries)
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s %12s\n",
		"path", "ns/op", "allocs/op", "B/op", "devIOs/op", "poolHit%")

	type mode struct {
		name   string
		attach func(tr *core.Tree) *disk.Pool
	}
	modes := []mode{
		{"copy", func(tr *core.Tree) *disk.Pool {
			tr.SetDevice(copyDevice{tr.Pager()})
			return nil
		}},
		{"view", func(tr *core.Tree) *disk.Pool {
			return nil // the default device is already the zero-copy pager
		}},
		{"pooled", func(tr *core.Tree) *disk.Pool {
			pl := disk.NewPool(tr.Pager(), frames, 8)
			tr.SetDevice(pl)
			return pl
		}},
	}

	pts := workload.DiagonalPoints(18, n, int64(4*n))
	for _, md := range modes {
		tr := core.New(core.Config{B: b}, pts)
		pool := md.attach(tr)
		// Warm up once so pool frames and decode-frame capacities settle.
		tr.DiagonalQuery(int64(2*n), func(geom.Point) bool { return true })

		var ms0, ms1 runtime.MemStats
		before := tr.Pager().Stats()
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < queries; i++ {
			a := int64(i%997) * int64(4*n) / 997
			tr.DiagonalQuery(a, func(geom.Point) bool { return true })
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		ios := tr.Pager().Stats().Sub(before).IOs()

		hitPct := 0.0
		if pool != nil {
			if total := pool.Hits() + pool.Misses(); total > 0 {
				hitPct = 100 * float64(pool.Hits()) / float64(total)
			}
		}
		fmt.Fprintf(w, "%-8s %12.0f %12.1f %12.0f %12.2f %12.1f\n",
			md.name,
			float64(elapsed.Nanoseconds())/float64(queries),
			float64(ms1.Mallocs-ms0.Mallocs)/float64(queries),
			float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(queries),
			float64(ios)/float64(queries),
			hitPct)
	}
	fmt.Fprintln(w, "shape check: copy and view must show identical devIOs/op (the cost")
	fmt.Fprintln(w, "model is untouched); view must cut allocs/op by >=10x vs copy; pooled")
	fmt.Fprintln(w, "must cut devIOs/op via frame hits without changing any query answer.")
}
