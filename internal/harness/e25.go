package harness

// E25 — Write-optimized ingest: the log-structured decomposition frontier.
//
// PR 10 decomposes the interval manager into a memtable plus a logarithmic
// set of immutable runs (the Bentley–Saxe construction applied to the
// Proposition 2.2 structure). E25 measures the trade the decomposition
// buys, at EQUAL durability — every mode below runs WAL-on, acked at the
// same sync boundary:
//
//  1. Ingest sweep: the SAME insert-heavy churn stream against the durable
//     single-tree manager (the rebuild path: semi-dynamic metablock
//     inserts + weak-delete global rebuilds, all foreground by
//     construction) and against log-structured managers across MaxRuns in
//     {2, 4, 8, 16}. Per-op I/O is split into a foreground bucket (ops
//     that only touched the WAL and memtable) and a background bucket
//     (ops on which a memtable flush, run merge, or dead-fraction
//     compaction fired — work a background merger takes off the ack
//     path; the sweep runs SyncCompaction for deterministic accounting).
//     The headline claim: foreground I/Os per insert drops >= 5x.
//
//  2. Read fan-in: after the churn, 200 stabbing queries per mode measure
//     what the decomposition costs reads — one corner query per live run
//     instead of one — as MaxRuns grows. Every answer is checked against
//     an in-memory single-tree oracle fed the identical stream; any set
//     difference is a correctness failure, not a statistic.

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/workload"
)

// E25Intervals is the interval count of the E25 workload (flag -e25n).
var E25Intervals = 30000

func runE25(w io.Writer) {
	const b = 32
	n := E25Intervals
	span := int64(n) * 16
	ops := n / 2
	memtable := 1024
	if memtable > ops/8 {
		memtable = ops / 8
	}

	base := workload.UniformIntervals(103, n/2, span, span/64)
	churn := workload.ChurnOps(107, workload.SeqIDs(n/2), uint64(n/2), ops, span, span/64)

	// The oracle: a plain in-memory single tree fed the identical stream.
	oracle := intervals.New(intervals.Config{B: b}, base)
	for _, op := range churn {
		switch op.Kind {
		case workload.ChurnInsert:
			oracle.Insert(op.Iv)
		case workload.ChurnDelete:
			oracle.Delete(op.ID)
		}
	}
	queries := make([]int64, 200)
	for i := range queries {
		queries[i] = int64(i) * span / int64(len(queries))
	}
	want := make([][]uint64, len(queries))
	for i, q := range queries {
		want[i] = sortedStabIDs(oracle, q)
	}

	fmt.Fprintf(w, "B=%d, n=%d preloaded intervals, %d churn ops, WAL on everywhere;\n"+
		"log-structured modes: memtable=%d, SyncCompaction (deterministic I/O buckets).\n"+
		"ios = pager I/Os + device writes; fg = ops where no flush/merge/compaction fired.\n\n",
		b, n/2, ops, memtable)
	fmt.Fprintf(w, "%-14s %8s %12s %12s %10s %6s %8s %10s %6s\n",
		"mode", "us/op", "fg ios/ins", "bg ios/ins", "devw/op", "runs", "fl/mg/cp", "stab I/O", "mism")

	var treeFg float64
	modes := []struct {
		name string
		ig   *intervals.IngestConfig
	}{
		{"tree(rebuild)", nil},
		{"lsm maxruns=2", &intervals.IngestConfig{MemtableSize: memtable, MaxRuns: 2, SyncCompaction: true}},
		{"lsm maxruns=4", &intervals.IngestConfig{MemtableSize: memtable, MaxRuns: 4, SyncCompaction: true}},
		{"lsm maxruns=8", &intervals.IngestConfig{MemtableSize: memtable, MaxRuns: 8, SyncCompaction: true}},
		{"lsm maxruns=16", &intervals.IngestConfig{MemtableSize: memtable, MaxRuns: 16, SyncCompaction: true}},
	}
	for _, mode := range modes {
		dir, err := os.MkdirTemp("", "ccidx-e25-*")
		if err != nil {
			panic(err)
		}
		m, err := intervals.CreateAt(dir, intervals.Config{B: b, Ingest: mode.ig}, base, intervals.DurableOptions{})
		if err != nil {
			panic(err)
		}
		ios := func() int64 { return m.Stats().IOs() + m.FileWrites() }
		bgEvents := func() int64 {
			st := m.IngestStats()
			return st.Flushes + st.Merges + st.Compactions
		}
		var fgIOs, bgIOs, inserts int64
		writes0 := m.FileWrites()
		start := time.Now()
		for _, op := range churn {
			before, ev := ios(), bgEvents()
			switch op.Kind {
			case workload.ChurnInsert:
				m.Insert(op.Iv)
				inserts++
			case workload.ChurnDelete:
				m.Delete(op.ID)
			}
			delta := ios() - before
			if bgEvents() != ev {
				bgIOs += delta
			} else if op.Kind == workload.ChurnInsert {
				fgIOs += delta
			}
		}
		elapsed := time.Since(start)
		devWrites := m.FileWrites() - writes0

		st0 := m.Stats()
		mismatched := 0
		for i, q := range queries {
			if !equalIDs(sortedStabIDs(m, q), want[i]) {
				mismatched++
			}
		}
		stabIOs := float64(m.Stats().Sub(st0).IOs()) / float64(len(queries))

		ing := m.IngestStats()
		fg := float64(fgIOs) / float64(inserts)
		if mode.ig == nil {
			treeFg = fg
		}
		fmt.Fprintf(w, "%-14s %8.1f %12.2f %12.2f %10.2f %6d %8s %10.1f %6d\n",
			mode.name, float64(elapsed.Microseconds())/float64(len(churn)),
			fg, float64(bgIOs)/float64(inserts), float64(devWrites)/float64(len(churn)),
			ing.Runs, fmt.Sprintf("%d/%d/%d", ing.Flushes, ing.Merges, ing.Compactions),
			stabIOs, mismatched)
		if mismatched > 0 {
			fmt.Fprintf(w, "!! %s: %d of %d stab answers differ from the single-tree oracle\n",
				mode.name, mismatched, len(queries))
		}
		if mode.ig != nil && treeFg > 0 && fg > 0 && treeFg/fg < 5 {
			fmt.Fprintf(w, "!! %s: foreground ios/insert only %.1fx below the rebuild path (want >= 5x)\n",
				mode.name, treeFg/fg)
		}
		m.CloseFiles()
		os.RemoveAll(dir)
	}
	fmt.Fprintf(w, "\nshape check: the rebuild path pays its metablock merges and global\n"+
		"rebuilds inline, so its foreground column IS its total; log-structured\n"+
		"ingest acks after one WAL append + a memtable write, deferring tree\n"+
		"construction to the flush/merge bucket. Larger MaxRuns defers more\n"+
		"(lower write amplification in devw/op) and charges reads one corner\n"+
		"query per extra run (stab I/O column) — the classic LSM frontier.\n")
}

// sortedStabIDs collects a Stab answer as a sorted id set.
func sortedStabIDs(m *intervals.Manager, q int64) []uint64 {
	var ids []uint64
	m.Stab(q, func(iv geom.Interval) bool {
		ids = append(ids, iv.ID)
		return true
	})
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
