package harness

// E24 — Replicated reads: router throughput scaling and kill-one-replica
// availability.
//
// PR 9 adds snapshot-shipped read replicas and a client-side failover
// router. E24 measures what the fleet buys and what failover costs:
//
//  1. Scaling sweep: the SAME closed-loop read workload (the E16/E22
//     stabbing mix) routed over 1, 2 and 3 endpoints — the primary alone,
//     then with one and two hydrated replicas. The router spreads
//     round-robin over ready endpoints, so throughput should rise with the
//     fleet until the shared backend or loopback transport saturates.
//
//  2. Kill sweep: with the full 3-endpoint fleet under continuous routed
//     reads, a killer severs one replica's HTTP front, holds it down,
//     restores it, and repeats for the whole phase. The claim under test
//     is the PR's headline: ZERO failed requests and every answer
//     byte-identical to the sequential backend oracle — kills cost
//     retries and failovers (reported), never correctness or
//     availability.
//
// Replicas hydrate from the primary's checkpoint snapshot and tail its
// logical WAL; the dataset is static during the measured phases, so the
// oracle is the backend's own Stab answer.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/replica"
	"ccidx/internal/router"
	"ccidx/internal/server"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

// E24Intervals is the interval count of the E24 workload (flag -e24n).
var E24Intervals = 20000

// e24Front is an HTTP front that can be killed and rebound on the same
// address, so the router's endpoint list stays valid across kills.
type e24Front struct {
	mu   sync.Mutex
	addr string
	h    http.Handler
	srv  *http.Server
}

func newE24Front(h http.Handler) *e24Front {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	f := &e24Front{addr: ln.Addr().String(), h: h}
	f.srv = &http.Server{Handler: h}
	go f.srv.Serve(ln)
	return f
}

func (f *e24Front) url() string { return "http://" + f.addr }

func (f *e24Front) kill() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.srv != nil {
		f.srv.Close()
		f.srv = nil
	}
}

func (f *e24Front) restart() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.srv != nil {
		return
	}
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", f.addr); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		panic(err)
	}
	f.srv = &http.Server{Handler: f.h}
	go f.srv.Serve(ln)
}

func runE24(w io.Writer) {
	const (
		b         = 32
		clients   = 16
		perClient = 250
	)
	n := E24Intervals
	span := int64(n) * 16
	ivs := workload.UniformIntervals(101, n, span, span/64)

	// Durable primary (replication serving requires a checkpoint to ship).
	dir, err := os.MkdirTemp("", "ccidx-e24-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	dm, err := shard.CreateIntervalsAt(dir, shard.Config{
		Shards: 4, B: b, Batch: 32,
		Partition: shard.PartitionRange, Span: span, PoolFrames: 256,
	}, ivs, intervals.DurableOptions{})
	if err != nil {
		panic(err)
	}
	defer dm.Close()
	ps, err := server.New(server.Backend{Intervals: dm}, server.Config{Replication: true})
	if err != nil {
		panic(err)
	}
	defer ps.Close()
	primary := newE24Front(ps.Handler())
	defer primary.kill()

	// Two replicas, each hydrated from the primary's snapshot.
	fronts := []*e24Front{primary}
	for i := 0; i < 2; i++ {
		rdir, err := os.MkdirTemp("", fmt.Sprintf("ccidx-e24-r%d-*", i))
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(rdir)
		rep, err := replica.Open(primary.url(), replica.Options{Dir: rdir, Poll: 5 * time.Millisecond})
		if err != nil {
			panic(err)
		}
		defer rep.Close()
		rs, err := server.New(server.Backend{Intervals: rep.Intervals()}, server.Config{
			ReadOnly: true, Status: rep.Status,
		})
		if err != nil {
			panic(err)
		}
		defer rs.Close()
		f := newE24Front(rs.Handler())
		defer f.kill()
		fronts = append(fronts, f)
	}
	fmt.Fprintf(w, "n=%d intervals, 4 shards, B=%d; primary + 2 snapshot-hydrated replicas;\n"+
		"%d closed-loop clients x %d routed stab queries per arm.\n\n", n, b, clients, perClient)

	// --- 1. Scaling sweep: 1 -> 3 endpoints under the same read load. ----
	fmt.Fprintf(w, "%-10s %12s %10s %10s %10s %10s\n",
		"endpoints", "req/s", "speedup", "p99 us", "retries", "hedges")
	var base float64
	for k := 1; k <= len(fronts); k++ {
		eps := make([]string, k)
		for i := 0; i < k; i++ {
			eps[i] = fronts[i].url()
		}
		rt, err := router.New(router.Config{
			Endpoints: eps, ProbeInterval: 20 * time.Millisecond, Seed: 24,
		})
		if err != nil {
			panic(err)
		}
		reqs, elapsed, p99, _, _ := e24Drive(rt, span, clients, perClient, nil)
		st := rt.Stats()
		rt.Close()
		rate := float64(reqs) / elapsed.Seconds()
		if k == 1 {
			base = rate
		}
		fmt.Fprintf(w, "%-10d %12.0f %9.2fx %10.0f %10d %10d\n",
			k, rate, rate/base, float64(p99.Microseconds()), st.Retries, st.Hedges)
	}
	fmt.Fprintf(w, "\nshape check: one shared in-process backend serves all fronts, so scaling\n"+
		"reflects the HTTP/routing layer spreading load, not extra cores per node.\n\n")

	// --- 2. Kill sweep: continuous kills of one replica, zero failures. --
	eps := make([]string, len(fronts))
	for i, f := range fronts {
		eps[i] = f.url()
	}
	rt, err := router.New(router.Config{
		Endpoints: eps, ProbeInterval: 10 * time.Millisecond,
		BaseBackoff: time.Millisecond, MaxAttempts: 8, Seed: 24,
	})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	stop := make(chan struct{})
	var kills int
	var killerWG sync.WaitGroup
	killerWG.Add(1)
	go func() {
		defer killerWG.Done()
		krng := rand.New(rand.NewSource(47))
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim := fronts[1+krng.Intn(len(fronts)-1)] // never the primary
			victim.kill()
			kills++
			time.Sleep(time.Duration(5+krng.Intn(15)) * time.Millisecond)
			victim.restart()
			time.Sleep(time.Duration(5+krng.Intn(10)) * time.Millisecond)
		}
	}()
	oracle := func(q int64, got []uint64) bool {
		want := map[uint64]bool{}
		dm.Stab(q, func(iv geom.Interval) bool { want[iv.ID] = true; return true })
		if len(got) != len(want) {
			return false
		}
		for _, id := range got {
			if !want[id] {
				return false
			}
		}
		return true
	}
	reqs, elapsed, p99, failed, mismatched := e24Drive(rt, span, clients/2, perClient, oracle)
	close(stop)
	killerWG.Wait()
	for _, f := range fronts {
		f.restart()
	}
	st := rt.Stats()

	fmt.Fprintf(w, "kill sweep: %d kill/restart cycles of a replica front during %d routed reads.\n", kills, reqs)
	fmt.Fprintf(w, "%-24s %12s\n", "metric", "value")
	fmt.Fprintf(w, "%-24s %12d\n", "failed requests", failed)
	fmt.Fprintf(w, "%-24s %12d\n", "oracle mismatches", mismatched)
	fmt.Fprintf(w, "%-24s %12.0f\n", "req/s under kills", float64(reqs)/elapsed.Seconds())
	fmt.Fprintf(w, "%-24s %12.0f\n", "p99 us under kills", float64(p99.Microseconds()))
	fmt.Fprintf(w, "%-24s %12d\n", "retries", st.Retries)
	fmt.Fprintf(w, "%-24s %12d\n", "failovers", st.Failovers)
	fmt.Fprintf(w, "%-24s %12d\n", "hedges won", st.HedgeWins)
	fmt.Fprintf(w, "%-24s %12d\n", "breaker trips", st.BreakerTrips)
	if failed > 0 || mismatched > 0 {
		fmt.Fprintf(w, "!! availability/correctness violated: %d failed, %d mismatched\n", failed, mismatched)
	} else {
		fmt.Fprintf(w, "\nshape check: kills cost retries and failovers (nonzero above), never a\n"+
			"failed request or a wrong answer — the router's epoch/LSN guard plus\n"+
			"retry budget absorbs every severed front.\n")
	}
}

// e24Drive runs the closed-loop routed read phase and returns request
// count, wall time, p99 latency, failed requests, and oracle mismatches
// (0 when oracle is nil).
func e24Drive(rt *router.Router, span int64, clients, perClient int, oracle func(int64, []uint64) bool) (int, time.Duration, time.Duration, int64, int64) {
	total := clients * perClient
	lats := make([]time.Duration, total)
	var next, failed, mismatched atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(int64(2400 + c)))
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				q := crng.Int63n(span)
				t0 := time.Now()
				ivs, err := rt.Stab(context.Background(), q)
				lats[i] = time.Since(t0)
				if err != nil {
					failed.Add(1)
					continue
				}
				if oracle != nil {
					ids := make([]uint64, len(ivs))
					for j, iv := range ivs {
						ids[j] = iv.ID
					}
					if !oracle(q, ids) {
						mismatched.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return total, elapsed, lats[total*99/100], failed.Load(), mismatched.Load()
}
