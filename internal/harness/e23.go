package harness

// E23 — Write-ahead logging: mutation overhead and recovery time.
//
// PR 6 closes the durability window between checkpoints with a per-store
// group-commit WAL. E23 measures what that costs and what it buys:
//
//  1. Overhead sweep: the SAME churn workload against the sharded durable
//     store with the WAL off (the pre-PR checkpoint-granular window),
//     with group-commit (default: one log append per mutation, fsync
//     deferred to the group boundary), and with fsync-always (one fsync
//     per append — the classical upper bound). The wal=off run is the
//     control: its device writes are the pre-WAL write path, bit for bit.
//
//  2. Recovery time vs log length: a crash loses the group buffer's
//     in-flight op at most, but recovery must replay the whole tail since
//     the last checkpoint. The sweep grows the tail and times the reopen,
//     separating the O(n/B) directory-rebuild scan (present at L=0) from
//     the O(L) replay.

import (
	"fmt"
	"io"
	"os"
	"time"

	"ccidx/internal/disk"
	"ccidx/internal/intervals"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

// E23Intervals is the interval count of the E23 workload (flag -e23n).
var E23Intervals = 50000

func runE23(w io.Writer) {
	const (
		b     = 32
		span  = int64(1 << 20)
		batch = 16
	)
	n := E23Intervals
	ops := n / 5

	fmt.Fprintf(w, "B=%d, n=%d intervals, %d churn ops, 4 shards, group-commit batch %d.\n\n",
		b, n, ops, batch)
	fmt.Fprintf(w, "%-16s %10s %12s %10s %10s %12s\n",
		"wal mode", "us/op", "appends", "fsyncs", "dev writes", "ckpt ms")

	ivs := workload.UniformIntervals(83, n, span, span/64)
	churn := workload.ChurnOps(89, workload.SeqIDs(n), uint64(n), ops, span, span/64)

	modes := []struct {
		name string
		opt  intervals.DurableOptions
	}{
		{"off", intervals.DurableOptions{DisableWAL: true}},
		{"group-commit", intervals.DurableOptions{}},
		{"fsync-always", intervals.DurableOptions{Fsync: disk.FsyncAlways}},
	}
	for _, mode := range modes {
		dir, err := os.MkdirTemp("", "ccidx-e23-*")
		if err != nil {
			panic(err)
		}
		cfg := shard.Config{Shards: 4, B: b, Batch: batch,
			Partition: shard.PartitionRange, Span: span, PoolFrames: 4096}
		s, err := shard.CreateIntervalsAt(dir, cfg, ivs, mode.opt)
		if err != nil {
			panic(err)
		}
		writes0 := s.FileWrites()
		start := time.Now()
		for _, op := range churn {
			switch op.Kind {
			case workload.ChurnInsert:
				s.Insert(op.Iv)
			case workload.ChurnDelete:
				s.Delete(op.ID)
			}
		}
		s.Flush()
		elapsed := time.Since(start)
		appends, syncs := s.WALStats()
		writes := s.FileWrites() - writes0
		start = time.Now()
		if err := s.Checkpoint(); err != nil {
			panic(err)
		}
		ckptMS := float64(time.Since(start).Microseconds()) / 1000
		fmt.Fprintf(w, "%-16s %10.2f %12d %10d %10d %12.1f\n",
			mode.name, float64(elapsed.Microseconds())/float64(len(churn)),
			appends, syncs, writes, ckptMS)
		s.Close()
		os.RemoveAll(dir)
	}
	fmt.Fprintf(w, "\nwal=off is the pre-WAL write path (the control); group-commit pays one\n"+
		"append per mutation and defers fsync to the flush boundary; fsync-always\n"+
		"shows the per-op durability ceiling the group amortizes away.\n\n")

	// Recovery time vs log length: checkpoint once, grow the WAL tail, close
	// WITHOUT checkpointing, and time the reopen that must replay it.
	fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "recovery", "log records", "open ms", "replayed")
	for _, frac := range []int{0, 16, 4, 1} {
		tail := 0
		if frac > 0 {
			tail = ops / frac
		}
		dir, err := os.MkdirTemp("", "ccidx-e23-rec-*")
		if err != nil {
			panic(err)
		}
		m, err := intervals.CreateAt(dir, intervals.Config{B: b}, ivs, intervals.DurableOptions{})
		if err != nil {
			panic(err)
		}
		extra := workload.UniformIntervals(97, tail, span, span/64)
		for i, iv := range extra {
			iv.ID = uint64(n + i + 1)
			m.Insert(iv)
		}
		logged := m.WAL().Appends()
		if err := m.CloseFiles(); err != nil {
			panic(err)
		}
		start := time.Now()
		re, err := intervals.OpenAt(dir, intervals.DurableOptions{})
		if err != nil {
			panic(err)
		}
		openMS := float64(time.Since(start).Microseconds()) / 1000
		got := re.Len()
		re.CloseFiles()
		os.RemoveAll(dir)
		if got != n+tail {
			fmt.Fprintf(w, "!! recovered %d intervals, want %d\n", got, n+tail)
		}
		fmt.Fprintf(w, "%-14s %12d %12.1f %12d\n", "", logged, openMS, tail)
	}
	fmt.Fprintf(w, "\nopen time = the flat O(n/B) rebuild scan (the L=0 row) + O(L) replay;\n"+
		"checkpoints bound L, so the tail term is the price of the window closed.\n")
}
