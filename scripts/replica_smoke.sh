#!/usr/bin/env bash
# Replica smoke: the PR's availability claim exercised with the REAL
# binaries. A durable primary serves the replication endpoints, two
# replicas hydrate from its snapshot and tail its WAL, and ccload routes a
# read load over all three while one replica is kill -9'd mid-load and
# restarted (a fresh hydration on the same address — the crash-only
# restart model). Gates:
#
#   - ccload exits 0: not one routed request failed.
#   - ccload's -check pass: a seeded query sample answered through the
#     router is row-identical to the primary's sequential answers.
#
# Usage: scripts/replica_smoke.sh [bin-dir]   (default ./bin; binaries
# must already be built — `make replica-smoke` does both).
set -euo pipefail

BIN=${1:-./bin}
PPORT=18426
R1PORT=18427
R2PORT=18428
PRIMARY=http://127.0.0.1:$PPORT
R1=http://127.0.0.1:$R1PORT
R2=http://127.0.0.1:$R2PORT

WORK=$(mktemp -d /tmp/ccidx-replica-smoke-XXXXXX)
pids=()
cleanup() {
    for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_http() { # url path deadline_s
    local url=$1 path=$2 deadline=$((SECONDS + $3))
    until curl -fsS -o /dev/null "$url$path" 2>/dev/null; do
        if ((SECONDS >= deadline)); then
            echo "replica-smoke: $url$path not up within $3 s" >&2
            return 1
        fi
        sleep 0.2
    done
}

echo "== primary (durable, replication-serving) =="
"$BIN/ccserve" -addr 127.0.0.1:$PPORT -dir "$WORK/primary" -n 20000 -shards 4 -wal-serve &
pids+=($!)
wait_http "$PRIMARY" /healthz 10

start_replica() { # port dir
    # Stdout goes to a log, not the inherited fd: callers capture the pid
    # via command substitution, which would otherwise block on the open
    # pipe for the server's lifetime.
    "$BIN/ccserve" -addr "127.0.0.1:$1" -dir "$2" -replica-of "$PRIMARY" \
        >"$WORK/replica-$1.log" 2>&1 &
    echo $!
}

echo "== replicas (snapshot hydration + WAL tail) =="
r1_pid=$(start_replica $R1PORT "$WORK/r1")
pids+=("$r1_pid")
r2_pid=$(start_replica $R2PORT "$WORK/r2")
pids+=("$r2_pid")
wait_http "$R1" /readyz 15
wait_http "$R2" /readyz 15

echo "== routed load with a kill -9 of replica 2 mid-run =="
status=0
"$BIN/ccload" -endpoints "$PRIMARY,$R1,$R2" -check "$PRIMARY" -c 8 -n 6000 &
load_pid=$!

sleep 1
echo "-- kill -9 replica 2 --"
kill -9 "$r2_pid" 2>/dev/null || true
sleep 1
echo "-- restart replica 2 (fresh hydration, same address) --"
r2_pid=$(start_replica $R2PORT "$WORK/r2")
pids+=("$r2_pid")

wait "$load_pid" || status=$?
if ((status != 0)); then
    echo "replica-smoke: FAIL (ccload exit $status: failed requests or oracle mismatch)" >&2
    exit "$status"
fi

# The restarted replica must re-join: readiness back, then a second check
# pass confirms its answers too (the router only routes to ready nodes).
wait_http "$R2" /readyz 15
"$BIN/ccload" -endpoints "$PRIMARY,$R1,$R2" -check "$PRIMARY" -c 4 -n 1000
echo "replica-smoke: OK (zero failed requests, oracle-identical answers)"
