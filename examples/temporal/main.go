// Temporal: a temporal-database scenario for interval management. Every
// row version carries a validity interval [from, to]; "as of" queries are
// stabbing queries, and audit windows are interval intersections — the
// exact workload Section 2.1 motivates for constraint indexing, at a scale
// where the O(log_B n + t/B) vs O(n/B) difference is visible.
package main

import (
	"fmt"
	"math/rand"

	"ccidx"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
)

func main() {
	const n = 200_000
	const horizon = int64(3_000_000) // "seconds" of history
	rng := rand.New(rand.NewSource(99))

	im := ccidx.NewIntervalManager(ccidx.Config{B: 64}, nil)
	naive := intervals.NewNaive(64)
	for i := 0; i < n; i++ {
		from := rng.Int63n(horizon)
		iv := ccidx.Interval{Lo: from, Hi: from + 1000 + rng.Int63n(20_000), ID: uint64(i)}
		im.Insert(iv)
		naive.Insert(iv)
	}
	fmt.Printf("loaded %d row versions over a %d-second horizon\n", n, horizon)

	// "As of" query.
	asOf := horizon / 2
	before := im.Stats()
	live := 0
	im.Stab(asOf, func(ccidx.Interval) bool { live++; return true })
	mIOs := im.Stats().Sub(before).IOs()

	bn := naive.Pager().Stats()
	naive.Stab(asOf, func(geom.Interval) bool { return true })
	nIOs := naive.Pager().Stats().Sub(bn).IOs()

	fmt.Printf("AS OF t=%d: %d live versions; metablock manager %d I/Os, naive scan %d I/Os (%.0fx)\n",
		asOf, live, mIOs, nIOs, float64(nIOs)/float64(mIOs))

	// Audit window: every version valid at any point of a 1-hour window.
	win := ccidx.Interval{Lo: asOf, Hi: asOf + 3600}
	before = im.Stats()
	hits := 0
	im.Intersect(win, func(ccidx.Interval) bool { hits++; return true })
	fmt.Printf("audit window [%d, %d]: %d versions, %d I/Os\n",
		win.Lo, win.Hi, hits, im.Stats().Sub(before).IOs())

	fmt.Printf("index space: %d blocks for %d intervals (O(n/B))\n", im.SpaceBlocks(), im.Len())
}
