// OODB: the paper's running class-hierarchy example (Examples 2.3 and 2.4,
// Fig 5). People are organised as Person <- {Student, Professor} and
// Professor <- Assistant Professor; queries ask for all people in the FULL
// extent of a class with income in a range — e.g. "all Professors (incl.
// assistant professors) earning between 50K and 60K".
package main

import (
	"fmt"
	"math/rand"

	"ccidx"
)

func main() {
	h := ccidx.NewHierarchy()
	h.MustAddClass("Person", "")
	h.MustAddClass("Student", "Person")
	h.MustAddClass("Professor", "Person")
	h.MustAddClass("AsstProf", "Professor")
	h.Freeze()

	// The exact rational labels of Fig 5, computed by the label-class
	// procedure of Fig 4.
	labels := h.LabelClass()
	fmt.Println("label-class ranges (Fig 5):")
	for _, name := range []string{"Person", "Student", "Professor", "AsstProf"} {
		id, _ := h.Class(name)
		fmt.Printf("  %-10s value %v, range [%v, %v)\n",
			name, labels[id].Value.RatString(), labels[id].Value.RatString(), labels[id].End.RatString())
	}

	idx := ccidx.NewClassIndex(h, ccidx.Config{B: 16}, ccidx.StrategyRakeContract)
	rng := rand.New(rand.NewSource(7))
	classes := []string{"Person", "Student", "Professor", "AsstProf"}
	incomes := map[string][2]int64{
		"Person":    {20_000, 120_000},
		"Student":   {5_000, 30_000},
		"Professor": {60_000, 150_000},
		"AsstProf":  {45_000, 90_000},
	}
	for i := 0; i < 10_000; i++ {
		cls := classes[rng.Intn(len(classes))]
		lo, hi := incomes[cls][0], incomes[cls][1]
		idx.Insert(cls, lo+rng.Int63n(hi-lo), uint64(i))
	}

	for _, q := range []struct {
		class  string
		lo, hi int64
	}{
		{"Professor", 50_000, 60_000}, // Example 2.4's first query
		{"Person", 100_000, 200_000},  // Example 2.4's second query
		{"Student", 10_000, 20_000},
	} {
		before := idx.Stats()
		count := 0
		idx.Query(q.class, q.lo, q.hi, func(int64, uint64) bool {
			count++
			return true
		})
		fmt.Printf("full extent of %-10s income [%6d, %6d]: %5d people, %d block I/Os\n",
			q.class, q.lo, q.hi, count, idx.Stats().Sub(before).IOs())
	}

	// Inserting "a new person with income 10K in the Student class"
	// (Example 2.4's update).
	before := idx.Stats()
	idx.Insert("Student", 10_000, 999_999)
	fmt.Printf("insert into Student: %d block I/Os; index occupies %d blocks\n",
		idx.Stats().Sub(before).IOs(), idx.SpaceBlocks())
}
