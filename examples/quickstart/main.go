// Quickstart: index a set of intervals and run stabbing and intersection
// queries through the public API, printing the I/O cost of each operation.
//
// This is the minimal end-to-end use of the paper's result: interval
// management with B+-tree-like efficiency (Proposition 2.2 + Theorem 3.7).
package main

import (
	"fmt"

	"ccidx"
)

func main() {
	// A small schedule of jobs with start/end times.
	jobs := []ccidx.Interval{
		{Lo: 900, Hi: 1030, ID: 1},  // 09:00-10:30
		{Lo: 1000, Hi: 1200, ID: 2}, // 10:00-12:00
		{Lo: 1130, Hi: 1300, ID: 3}, // 11:30-13:00
		{Lo: 1400, Hi: 1500, ID: 4}, // 14:00-15:00
		{Lo: 845, Hi: 1700, ID: 5},  // 08:45-17:00
	}
	im := ccidx.NewIntervalManager(ccidx.Config{B: 16}, jobs)

	// Which jobs are running at 11:45?
	before := im.Stats()
	fmt.Println("jobs running at 11:45:")
	im.Stab(1145, func(iv ccidx.Interval) bool {
		fmt.Printf("  job %d [%d, %d]\n", iv.ID, iv.Lo, iv.Hi)
		return true
	})
	fmt.Printf("  (%d block I/Os)\n", im.Stats().Sub(before).IOs())

	// Which jobs overlap the window 10:00-11:00?
	before = im.Stats()
	fmt.Println("jobs overlapping [10:00, 11:00]:")
	im.Intersect(ccidx.Interval{Lo: 1000, Hi: 1100}, func(iv ccidx.Interval) bool {
		fmt.Printf("  job %d [%d, %d]\n", iv.ID, iv.Lo, iv.Hi)
		return true
	})
	fmt.Printf("  (%d block I/Os)\n", im.Stats().Sub(before).IOs())

	// Inserts are cheap and amortized (Theorem 3.7).
	before = im.Stats()
	im.Insert(ccidx.Interval{Lo: 1115, Hi: 1145, ID: 6})
	fmt.Printf("inserted job 6 with %d block I/Os; manager now holds %d intervals in %d blocks\n",
		im.Stats().Sub(before).IOs(), im.Len(), im.SpaceBlocks())
}
