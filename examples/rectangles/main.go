// Rectangles: the paper's Example 2.1. Rectangles are stored as generalized
// tuples of the constraint query language — R'(z,x,y) with constraints
// z = name, a <= x <= c, b <= y <= d — and the set of intersecting pairs is
// computed without any rectangle-specific case analysis: the generalized
// index on x supplies candidates, and exact satisfiability of the conjoined
// tuples decides each pair.
package main

import (
	"fmt"
	"math/rand"

	"ccidx/internal/cql"
	"ccidx/internal/geom"
)

func main() {
	// The same three rectangles the figure sketches, plus a random field.
	rects := []geom.Rect{
		{Name: 1, X1: 0, Y1: 0, X2: 10, Y2: 10},
		{Name: 2, X1: 5, Y1: 5, X2: 15, Y2: 15},
		{Name: 3, X1: 20, Y1: 0, X2: 30, Y2: 10},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 4; i <= 40; i++ {
		x := rng.Int63n(100)
		y := rng.Int63n(100)
		rects = append(rects, geom.Rect{
			Name: uint64(i), X1: x, Y1: y, X2: x + rng.Int63n(20), Y2: y + rng.Int63n(20),
		})
	}

	// Show the generalized-tuple encoding of rectangle 1.
	t1 := cql.RectTuple(rects[0])
	fmt.Println("rectangle 1 as a generalized tuple:")
	fmt.Printf("  %v\n", t1)
	fmt.Printf("  projection on x (the generalized key): %v\n\n", t1.Project(cql.RectVarX))

	pairs := cql.IntersectingPairs(rects, cql.Config{B: 8})
	fmt.Printf("%d intersecting pairs among %d rectangles:\n", len(pairs), len(rects))
	for i, p := range pairs {
		if i == 12 {
			fmt.Printf("  ... and %d more\n", len(pairs)-i)
			break
		}
		fmt.Printf("  (%d, %d)\n", p[0], p[1])
	}

	// Sanity: the CQL answer matches direct geometry.
	want := 0
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Intersects(rects[j]) {
				want++
			}
		}
	}
	fmt.Printf("geometric cross-check: %d pairs (must match)\n", want)
}
