package ccidx

import (
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// TestConcurrentMixedLoad exercises the documented concurrency contract of
// the public ShardedIntervalManager under -race: concurrent readers are
// always safe, concurrent writers are safe on disjoint ids, and Checkpoint
// requires quiesced mutations (here an external RWMutex: mutators hold the
// read side, the checkpointer the write side — the same discipline the
// serving front-end uses). During churn, readers verify geometric
// invariants of every answer; after the dust settles, the full state is
// compared against a brute-force oracle, then closed, reopened from the
// final checkpoint, and compared again.
func TestConcurrentMixedLoad(t *testing.T) {
	const (
		writers = 4
		readers = 3
		span    = int64(1 << 14)
	)
	perWriter := 600
	checkpoints := 4
	if testing.Short() {
		perWriter = 120
		checkpoints = 2
	}

	dir := filepath.Join(t.TempDir(), "index")
	initRng := rand.New(rand.NewSource(7))
	var initial []Interval
	for i := 0; i < 500; i++ {
		lo := initRng.Int63n(span)
		initial = append(initial, Interval{Lo: lo, Hi: lo + 1 + initRng.Int63n(300), ID: uint64(i)})
	}
	m, err := CreateShardedIntervalManager(ShardConfig{
		Shards: 4, B: 8, Batch: 8,
		Partition: PartitionRange, Span: span, PoolFrames: 32,
	}, dir, initial)
	if err != nil {
		t.Fatal(err)
	}

	var ckptMu sync.RWMutex // mutators RLock, Checkpoint Lock
	var wgW, wgR sync.WaitGroup
	stopReaders := make(chan struct{})

	// Writers: disjoint id ranges, each a private mix of inserts, deletes,
	// and reinserts. live[w] is the writer's own record of what survives.
	live := make([]map[uint64]Interval, writers)
	for w := 0; w < writers; w++ {
		live[w] = make(map[uint64]Interval)
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			base := uint64(10_000 * (w + 1))
			next := base
			var owned []uint64
			for i := 0; i < perWriter; i++ {
				ckptMu.RLock()
				switch {
				case len(owned) > 0 && rng.Intn(3) == 0:
					vic := owned[rng.Intn(len(owned))]
					if m.Delete(vic) {
						delete(live[w], vic)
					}
					if rng.Intn(2) == 0 { // reinsert the same id, new geometry
						lo := rng.Int63n(span)
						iv := Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(300), ID: vic}
						m.Insert(iv)
						live[w][vic] = iv
					}
				default:
					lo := rng.Int63n(span)
					iv := Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(300), ID: next}
					m.Insert(iv)
					live[w][next] = iv
					owned = append(owned, next)
					next++
				}
				ckptMu.RUnlock()
			}
		}(w)
	}

	// Readers: no fixed answer exists mid-churn, but every emitted interval
	// must satisfy the query geometry, and batch answers must match the
	// sequential call issued inside the same quiescent-free window only in
	// shape (geometry), which is what we can assert without stopping writes.
	for r := 0; r < readers; r++ {
		wgR.Add(1)
		go func(r int) {
			defer wgR.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					q := rng.Int63n(span)
					m.Stab(q, func(iv Interval) bool {
						if q < iv.Lo || q > iv.Hi {
							t.Errorf("stab(%d) emitted non-stabbed %v", q, iv)
						}
						return true
					})
				case 1:
					lo := rng.Int63n(span)
					q := Interval{Lo: lo, Hi: lo + rng.Int63n(500)}
					m.Intersect(q, func(iv Interval) bool {
						if iv.Hi < q.Lo || iv.Lo > q.Hi {
							t.Errorf("intersect(%v) emitted disjoint %v", q, iv)
						}
						return true
					})
				default:
					qs := make([]int64, 8)
					for i := range qs {
						qs[i] = rng.Int63n(span)
					}
					m.StabBatch(qs, func(qi int, iv Interval) bool {
						if qs[qi] < iv.Lo || qs[qi] > iv.Hi {
							t.Errorf("stabBatch q=%d emitted non-stabbed %v", qs[qi], iv)
						}
						return true
					})
				}
			}
		}(r)
	}

	// Checkpointer: takes the write side, so it only ever sees quiesced
	// mutators; readers keep running (Checkpoint tolerates readers).
	ckptDone := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < checkpoints && err == nil; i++ {
			ckptMu.Lock()
			err = m.Checkpoint()
			ckptMu.Unlock()
		}
		ckptDone <- err
	}()

	wgW.Wait()
	close(stopReaders)
	wgR.Wait()
	if err := <-ckptDone; err != nil {
		t.Fatalf("concurrent checkpoint: %v", err)
	}

	// Quiesced: merge the writers' records with the initial set and compare
	// against brute force at probe points.
	expect := make(map[uint64]Interval)
	for _, iv := range initial {
		expect[iv.ID] = iv
	}
	for w := range live {
		for id, iv := range live[w] {
			expect[id] = iv
		}
	}
	m.Flush()
	if m.Len() != len(expect) {
		t.Fatalf("Len() = %d, want %d", m.Len(), len(expect))
	}
	verify := func(m *ShardedIntervalManager, tag string) {
		for q := int64(0); q < span; q += span / 64 {
			var want []uint64
			for id, iv := range expect {
				if iv.Lo <= q && q <= iv.Hi {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := collectStab(m, q)
			if !sameIDs(got, want) {
				t.Fatalf("%s: stab(%d): got %d ids, want %d", tag, q, len(got), len(want))
			}
		}
	}
	verify(m, "post-churn")

	// Final checkpoint, reopen, re-verify: the concurrent run's outcome
	// must survive the durability cycle intact.
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenShardedIntervalManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != len(expect) {
		t.Fatalf("reopened Len() = %d, want %d", m2.Len(), len(expect))
	}
	verify(m2, "reopened")
}
