// Package ccidx is a faithful Go implementation of the I/O-efficient index
// structures of Kanellakis, Ramaswamy, Vengroff and Vitter, "Indexing for
// Data Models with Constraints and Classes" (PODS 1993; JCSS 52:589-612,
// 1996).
//
// The package exposes the paper's two applications:
//
//   - IntervalManager: external dynamic interval management — the problem
//     indexing constraints reduces to (Section 2.1) — backed by the
//     metablock tree of Section 3 (space O(n/B), query O(log_B n + t/B),
//     amortized insert O(log_B n + (log_B n)^2/B)).
//   - ClassIndex: indexing by attribute and class over a static forest
//     hierarchy (Sections 2.2 and 4), with three strategies: the simple
//     range-tree solution of Theorem 2.6, full-extent replication of
//     Lemma 4.2, and the rake-and-contract decomposition of Theorem 4.7.
//
// The underlying structures (metablock tree, 3-sided metablock tree,
// external priority search tree, B+-tree, CQL layer) live in internal/
// packages; everything runs against a simulated block device whose
// read/write counters are the experiment currency. See DESIGN.md for the
// architecture and EXPERIMENTS.md for the reproduced bounds.
package ccidx

import (
	"encoding/json"
	"fmt"

	"ccidx/internal/classindex"
	"ccidx/internal/core"
	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/shard"
)

// Interval is a closed interval with an identifier.
type Interval = geom.Interval

// Point is a planar point with an identifier.
type Point = geom.Point

// Stats holds I/O counters of a simulated device.
type Stats = disk.Stats

// Config selects the block capacity B (records per page).
type Config struct {
	B int
}

// FsyncPolicy selects how aggressively durable instances fsync.
type FsyncPolicy = disk.FsyncPolicy

// Fsync policies for durable instances.
const (
	// FsyncCheckpoint (the default) syncs at checkpoint ordering points;
	// WAL and journal appends rely on write ordering (process-crash safe).
	FsyncCheckpoint = disk.FsyncCheckpoint
	// FsyncNever never syncs; durability is left entirely to the OS.
	FsyncNever = disk.FsyncNever
	// FsyncAlways also syncs journal and WAL appends, extending crash
	// safety to power loss (sharded instances pay one fsync per
	// group-commit flush, not one per operation).
	FsyncAlways = disk.FsyncAlways
)

// DurableOptions tunes a durable instance's durability/performance
// trade-off. The zero value — checkpoint-time fsync with the write-ahead
// log ON — recovers every acknowledged mutation after a process crash.
type DurableOptions struct {
	// Fsync is the device and WAL fsync policy.
	Fsync FsyncPolicy
	// DisableWAL turns off write-ahead logging: mutations since the last
	// checkpoint are lost on a crash (the pre-WAL behavior; cheapest
	// writes).
	DisableWAL bool
}

// durableOpts folds the optional trailing options argument (the durable
// constructors take `opts ...DurableOptions` for compatibility; only the
// first value is used).
func durableOpts(opts []DurableOptions) DurableOptions {
	if len(opts) > 0 {
		return opts[0]
	}
	return DurableOptions{}
}

func (o DurableOptions) intervals() intervals.DurableOptions {
	return intervals.DurableOptions{Fsync: o.Fsync, DisableWAL: o.DisableWAL}
}

func (o DurableOptions) classes() classindex.DurableOpts {
	return classindex.DurableOpts{Fsync: o.Fsync, DisableWAL: o.DisableWAL}
}

// IntervalManager answers stabbing and intersection queries over a dynamic
// interval set (Proposition 2.2 + Theorem 3.7).
type IntervalManager struct {
	m *intervals.Manager
}

// NewIntervalManager builds a manager over an initial interval set.
//
// Deprecated: Use NewIndex with Options{B: cfg.B, PoolFrames: -1}, which
// also selects sharding and log-structured ingest; this wrapper remains for
// compatibility.
func NewIntervalManager(cfg Config, ivs []Interval) *IntervalManager {
	return &IntervalManager{m: intervals.New(intervals.Config{B: cfg.B}, ivs)}
}

// CreateIntervalManager builds a DURABLE manager: both index structures
// live on file-backed page devices inside dir (created if needed), and the
// initial state is checkpointed before returning. Use Checkpoint to persist
// later mutations and OpenIntervalManager to reopen after a restart — or a
// crash, which recovers the last committed checkpoint.
//
// Deprecated: Use Create with Options{B: cfg.B, PoolFrames: -1, Durability: ...}.
func CreateIntervalManager(cfg Config, dir string, ivs []Interval, opts ...DurableOptions) (*IntervalManager, error) {
	m, err := intervals.CreateAt(dir, intervals.Config{B: cfg.B}, ivs, durableOpts(opts).intervals())
	if err != nil {
		return nil, err
	}
	return &IntervalManager{m: m}, nil
}

// OpenIntervalManager reopens the durable manager persisted in dir at its
// last committed checkpoint. Crash recovery is automatic: partially written
// generations are rolled back, never observed.
//
// Deprecated: Use Open, which auto-detects the persisted topology.
func OpenIntervalManager(dir string, opts ...DurableOptions) (*IntervalManager, error) {
	m, err := intervals.OpenAt(dir, durableOpts(opts).intervals())
	if err != nil {
		return nil, err
	}
	return &IntervalManager{m: m}, nil
}

// Checkpoint makes the durable manager's current state crash-safe: the new
// generation is written beside the previous one and atomically committed
// (shadow superblocks + manifest rename), so a crash at any point leaves
// one consistent generation. Errors for managers built with
// NewIntervalManager (no backing files).
func (im *IntervalManager) Checkpoint() error { return im.m.Checkpoint() }

// Close closes a durable manager's files WITHOUT checkpointing (state since
// the last checkpoint is recovered — i.e. discarded back to that
// checkpoint — by the next OpenIntervalManager). No-op for in-memory
// managers.
func (im *IntervalManager) Close() error { return im.m.CloseFiles() }

// Insert adds an interval (semi-dynamic, amortized O(log_B n + log_B^2 n/B)).
func (im *IntervalManager) Insert(iv Interval) { im.m.Insert(iv) }

// Delete removes the interval with the given id, returning whether it was
// present. Interval ids must be unique among live intervals (Insert panics
// on a live duplicate). Deletion combines a real B+-tree delete on the
// endpoint side with a weak (tombstone) delete and amortized global
// rebuilding on the metablock side — the paper's structure is
// semi-dynamic, so the bound is amortized O(log_B n) I/Os and query bounds
// are unchanged. See DESIGN.md, "Weak deletes and global rebuilding".
func (im *IntervalManager) Delete(id uint64) bool { return im.m.Delete(id) }

// Len returns the number of intervals.
func (im *IntervalManager) Len() int { return im.m.Len() }

// Stab reports every interval containing q in O(log_B n + t/B) I/Os.
func (im *IntervalManager) Stab(q int64, emit func(Interval) bool) {
	im.m.Stab(q, intervals.EmitInterval(emit))
}

// Intersect reports every interval intersecting q exactly once, in
// O(log_B n + t/B) I/Os.
func (im *IntervalManager) Intersect(q Interval, emit func(Interval) bool) {
	im.m.Intersect(q, intervals.EmitInterval(emit))
}

// StabBatch answers a batch of stabbing queries in one shared traversal:
// the structure's upper levels are read once per BATCH instead of once per
// query, so I/Os per query fall toward the output-driven t/B floor as the
// batch grows. Results are demultiplexed per query: emit receives the
// batch position qi of the answered query, and per query the reported
// multiset is exactly Stab(qs[qi], ...)'s; returning false stops that
// query only. See DESIGN.md, "Batched query execution".
func (im *IntervalManager) StabBatch(qs []int64, emit func(qi int, iv Interval) bool) {
	im.m.StabBatch(qs, intervals.EmitBatch(emit))
}

// IntersectBatch answers a batch of intersection queries with one batched
// stabbing pass plus one batched endpoint-tree range pass, reporting each
// intersecting interval exactly once per query; demultiplexing and
// early-stop semantics as in StabBatch.
func (im *IntervalManager) IntersectBatch(qs []Interval, emit func(qi int, iv Interval) bool) {
	im.m.IntersectBatch(qs, intervals.EmitBatch(emit))
}

// Stats returns cumulative I/O counters.
func (im *IntervalManager) Stats() Stats { return im.m.Stats() }

// SpaceBlocks returns the number of disk blocks in use.
func (im *IntervalManager) SpaceBlocks() int64 { return im.m.SpaceBlocks() }

// Flush writes dirty pooled frames back to the devices (no-op without a
// pool; the unsharded manager has no group-commit buffer to drain). Part of
// the unified Index surface.
func (im *IntervalManager) Flush() { im.m.FlushPool() }

// Shards returns 1: the unsharded manager is a single shard.
func (im *IntervalManager) Shards() int { return 1 }

// Rebuilds counts amortized global rebuilds (tree mode) or run compactions
// (log-structured mode).
func (im *IntervalManager) Rebuilds() int { return im.m.Rebuilds() }

// PoolStats returns the buffer-pool hit/miss counters (zeros without a
// pool).
func (im *IntervalManager) PoolStats() (hits, misses int64) { return im.m.PoolStats() }

// IngestStats snapshots the log-structured ingest counters (zeros for
// tree-mode managers).
func (im *IntervalManager) IngestStats() IngestStats { return im.m.IngestStats() }

// Partition selects how a sharded index assigns keys to shards.
type Partition = shard.Partition

// Partition schemes.
const (
	// PartitionHash spreads keys uniformly; queries fan out to all shards.
	PartitionHash = shard.PartitionHash
	// PartitionRange assigns contiguous key ranges of [0, Span) to
	// consecutive shards; range queries touch only overlapping shards.
	PartitionRange = shard.PartitionRange
)

// ShardConfig configures the concurrent sharded serving layer.
type ShardConfig struct {
	// Shards is the number of independent shards (each with its own
	// simulated block device); values < 1 mean 1.
	Shards int
	// B is the block capacity of every per-shard structure.
	B int
	// Batch is the group-commit threshold: inserts accumulate in a
	// per-shard pending buffer and are applied to the index structure
	// every Batch calls while the shard's write lock is held. Values < 1
	// disable batching. Queries always see pending inserts.
	Batch int
	// Partition selects hash or range partitioning.
	Partition Partition
	// Span is the key domain [0, Span) used by PartitionRange; it must be
	// positive when that scheme is selected (construction panics
	// otherwise, to surface the misconfiguration immediately).
	Span int64
	// PoolFrames sizes each shard's concurrent CLOCK buffer pool: reads
	// that hit a memory-resident frame cost no device I/O, writes are
	// written back on eviction or Flush. 0 selects the default
	// (shard.DefaultPoolFrames); negative disables pooling, restoring the
	// paper's bare every-access-is-an-I/O cost model.
	PoolFrames int
}

func (c ShardConfig) internal() shard.Config {
	return shard.Config{Shards: c.Shards, B: c.B, Batch: c.Batch, Partition: c.Partition, Span: c.Span, PoolFrames: c.PoolFrames}
}

// ShardedIntervalManager is a concurrency-safe interval manager: the
// workload of IntervalManager partitioned across N shards with per-shard
// RWMutex guards, group-committed inserts and deletes and parallel query
// fan-out. All methods are safe for concurrent use on DISTINCT interval
// ids; mutations of the SAME id (reinserting an id while its Delete is in
// flight) need one logical writer per id, as with any keyed store —
// unsynchronized same-id races corrupt that id's entries. Interval ids
// must be unique among live intervals (inserting a live id panics).
type ShardedIntervalManager struct {
	s *shard.Intervals
}

// NewShardedIntervalManager builds a sharded manager over an initial
// interval set.
//
// Deprecated: Use NewIndex with Options{Sharding: &ShardingOptions{...}}.
func NewShardedIntervalManager(cfg ShardConfig, ivs []Interval) *ShardedIntervalManager {
	return &ShardedIntervalManager{s: shard.NewIntervals(cfg.internal(), ivs)}
}

// CreateShardedIntervalManager builds a DURABLE sharded manager: every
// shard's structures live on file-backed devices under dir (one
// subdirectory per shard), the serving configuration is recorded in a
// manifest, and the initial state is checkpointed before returning.
//
// Deprecated: Use Create with Options{Sharding: &ShardingOptions{...}}.
func CreateShardedIntervalManager(cfg ShardConfig, dir string, ivs []Interval, opts ...DurableOptions) (*ShardedIntervalManager, error) {
	s, err := shard.CreateIntervalsAt(dir, cfg.internal(), ivs, durableOpts(opts).intervals())
	if err != nil {
		return nil, err
	}
	return &ShardedIntervalManager{s: s}, nil
}

// OpenShardedIntervalManager reopens the sharded manager persisted under
// dir: the manifest supplies the serving configuration, every shard's files
// are reopened IN PARALLEL at the manifest's committed generation (crash
// recovery included), buffer pools are re-attached, and the manager resumes
// serving.
//
// Deprecated: Use Open, which auto-detects the persisted topology.
func OpenShardedIntervalManager(dir string, opts ...DurableOptions) (*ShardedIntervalManager, error) {
	s, err := shard.OpenIntervals(dir, durableOpts(opts).intervals())
	if err != nil {
		return nil, err
	}
	return &ShardedIntervalManager{s: s}, nil
}

// Checkpoint makes the whole sharded index durable at ONE consistent
// generation: per shard the pending group-commit log is drained and the
// devices prepared, then a single atomic manifest rename commits every
// shard together — a crash can never surface shards from different
// checkpoints. Queries may run concurrently; mutations must be quiesced.
func (sm *ShardedIntervalManager) Checkpoint() error { return sm.s.Checkpoint() }

// Close closes all shard files WITHOUT checkpointing.
func (sm *ShardedIntervalManager) Close() error { return sm.s.Close() }

// Insert adds an interval (group-committed; visible to queries at once).
func (sm *ShardedIntervalManager) Insert(iv Interval) { sm.s.Insert(iv) }

// Delete removes the interval with the given id, returning whether it was
// present. Routing is replica-aware (exactly the shards holding a replica
// are touched), the delete group-commits through the same pending buffers
// as inserts, and queries in between observe it immediately. Safe for
// concurrent use alongside operations on other ids; see the type comment
// for the one-writer-per-id contract.
func (sm *ShardedIntervalManager) Delete(id uint64) bool { return sm.s.Delete(id) }

// Flush forces all pending group-commit buffers into the index structures.
func (sm *ShardedIntervalManager) Flush() { sm.s.Flush() }

// Len returns the number of intervals stored, pending ones included.
func (sm *ShardedIntervalManager) Len() int { return sm.s.Len() }

// Shards returns the shard count.
func (sm *ShardedIntervalManager) Shards() int { return sm.s.Shards() }

// Stab reports every interval containing q, each exactly once.
func (sm *ShardedIntervalManager) Stab(q int64, emit func(Interval) bool) {
	sm.s.Stab(q, intervals.EmitInterval(emit))
}

// Intersect reports every interval intersecting q, each exactly once.
func (sm *ShardedIntervalManager) Intersect(q Interval, emit func(Interval) bool) {
	sm.s.Intersect(q, intervals.EmitInterval(emit))
}

// StabBatch answers a batch of stabbing queries: the batch is sorted and
// grouped by owning shard, each shard's read lock is acquired ONCE per
// group, the pending group-commit log is replayed once against the whole
// group, and every per-shard structure runs its shared-traversal batch
// pass; shard-groups fan out in parallel. Per query the result multiset is
// exactly Stab's; emit receives the batch position of the answered query
// and returning false stops that query only.
func (sm *ShardedIntervalManager) StabBatch(qs []int64, emit func(qi int, iv Interval) bool) {
	sm.s.StabBatch(qs, intervals.EmitBatch(emit))
}

// IntersectBatch is the batched Intersect: one lock acquisition and one
// pending replay per touched shard for the whole sub-batch, each
// intersecting interval reported exactly once per query.
func (sm *ShardedIntervalManager) IntersectBatch(qs []Interval, emit func(qi int, iv Interval) bool) {
	sm.s.IntersectBatch(qs, intervals.EmitBatch(emit))
}

// Stats sums the I/O counters of all shard devices (pool hits excluded:
// the counters measure transfers that actually reached the devices).
func (sm *ShardedIntervalManager) Stats() Stats { return sm.s.Stats() }

// PoolStats sums the buffer-pool hit/miss counters across shards (zeros
// when pooling is disabled).
func (sm *ShardedIntervalManager) PoolStats() (hits, misses int64) { return sm.s.PoolStats() }

// Rebuilds sums the stabber global-rebuild counters across shards; the
// serving metrics surface exposes it so rebuild storms can be correlated
// with latency spikes.
func (sm *ShardedIntervalManager) Rebuilds() int { return sm.s.Rebuilds() }

// SpaceBlocks sums the live pages across all shard devices.
func (sm *ShardedIntervalManager) SpaceBlocks() int64 { return sm.s.SpaceBlocks() }

// IngestStats sums the log-structured ingest counters across shards (zeros
// for tree-mode managers).
func (sm *ShardedIntervalManager) IngestStats() IngestStats { return sm.s.IngestStats() }

// ShardedClassIndex is a concurrency-safe class index: objects are
// partitioned by attribute across N independent per-shard structures of
// the chosen strategy, sharing one frozen hierarchy. All methods are safe
// for concurrent use.
type ShardedClassIndex struct {
	h *Hierarchy
	s *shard.Classes
}

// NewShardedClassIndex builds a sharded class index over a frozen
// hierarchy. PartitionRange with Span set to the attribute domain is the
// natural configuration: attribute-range queries then touch only the
// overlapping shards.
//
// Deprecated: Use NewClassStore with Options{Sharding: &ShardingOptions{...}}.
func NewShardedClassIndex(h *Hierarchy, cfg ShardConfig, s Strategy) *ShardedClassIndex {
	var newIndex func() shard.ClassIndex
	switch s {
	case StrategySimple:
		newIndex = func() shard.ClassIndex { return classindex.NewSimple(h, cfg.B) }
	case StrategyFullExtent:
		newIndex = func() shard.ClassIndex { return classindex.NewFullExtent(h, cfg.B) }
	case StrategyRakeContract:
		newIndex = func() shard.ClassIndex { return classindex.NewRakeContract(h, cfg.B) }
	default:
		panic("ccidx: unknown strategy")
	}
	return &ShardedClassIndex{h: h, s: shard.NewClasses(cfg.internal(), h, newIndex)}
}

// CreateShardedClassIndex builds a DURABLE, initially empty sharded class
// index: every shard's strategy instance lives on file-backed devices under
// dir, and the serving configuration plus the full hierarchy are recorded
// in the manifest.
//
// Deprecated: Use CreateClassStore with Options{Sharding: &ShardingOptions{...}}.
func CreateShardedClassIndex(h *Hierarchy, cfg ShardConfig, s Strategy, dir string, opts ...DurableOptions) (*ShardedClassIndex, error) {
	sc, err := shard.CreateClassesAt(dir, cfg.internal(), h, classindex.StrategyKind(s), durableOpts(opts).classes())
	if err != nil {
		return nil, err
	}
	return &ShardedClassIndex{h: h, s: sc}, nil
}

// OpenShardedClassIndex reopens the sharded class index persisted under
// dir at its last committed checkpoint, reopening shards in parallel and
// rebuilding the hierarchy from the manifest.
//
// Deprecated: Use OpenClassStore, which auto-detects the persisted topology.
func OpenShardedClassIndex(dir string, opts ...DurableOptions) (*ShardedClassIndex, error) {
	sc, h, err := shard.OpenClasses(dir, durableOpts(opts).classes())
	if err != nil {
		return nil, err
	}
	return &ShardedClassIndex{h: h, s: sc}, nil
}

// Checkpoint makes the whole sharded class index durable at one consistent
// generation (per-shard prepare, one manifest rename, per-shard commit).
// Mutations must be quiesced by the caller; queries may continue.
func (sc *ShardedClassIndex) Checkpoint() error { return sc.s.Checkpoint() }

// Close closes all shard files WITHOUT checkpointing.
func (sc *ShardedClassIndex) Close() error { return sc.s.Close() }

// Hierarchy returns the (frozen) hierarchy the index serves — for
// instances reopened from disk, the one rebuilt from the manifest.
func (sc *ShardedClassIndex) Hierarchy() *Hierarchy { return sc.h }

// Insert adds an object with the given class name, attribute and id.
func (sc *ShardedClassIndex) Insert(class string, attr int64, id uint64) {
	c, ok := sc.h.Class(class)
	if !ok {
		panic("ccidx: unknown class " + class)
	}
	sc.s.Insert(classindex.Object{Class: c, Attr: attr, ID: id})
}

// Flush forces all pending group-commit buffers into the index structures.
func (sc *ShardedClassIndex) Flush() { sc.s.Flush() }

// Shards returns the shard count.
func (sc *ShardedClassIndex) Shards() int { return sc.s.Shards() }

// Query reports every object in the FULL extent of the class whose
// attribute lies in [a1, a2], each exactly once.
func (sc *ShardedClassIndex) Query(class string, a1, a2 int64, emit func(attr int64, id uint64) bool) {
	c, ok := sc.h.Class(class)
	if !ok {
		panic("ccidx: unknown class " + class)
	}
	sc.s.Query(c, a1, a2, classindex.EmitObject(emit))
}

// ClassRangeQuery is one query of a batched class-index lookup.
type ClassRangeQuery struct {
	Class  string
	A1, A2 int64
}

// QueryBatch answers a batch of full-extent class queries: each touched
// shard is locked once for its whole sub-batch and its pending buffer is
// scanned once for the group, with shards queried in parallel. Per query
// the result multiset is exactly Query's; emit receives the batch position
// of the answered query and returning false stops that query only.
func (sc *ShardedClassIndex) QueryBatch(qs []ClassRangeQuery, emit func(qi int, attr int64, id uint64) bool) {
	sqs := make([]shard.ClassQuery, len(qs))
	for i, q := range qs {
		c, ok := sc.h.Class(q.Class)
		if !ok {
			panic("ccidx: unknown class " + q.Class)
		}
		sqs[i] = shard.ClassQuery{Class: c, A1: q.A1, A2: q.A2}
	}
	sc.s.QueryBatch(sqs, emit)
}

// Stats sums the I/O counters of all shard structures.
func (sc *ShardedClassIndex) Stats() Stats { return sc.s.Stats() }

// SpaceBlocks sums the live pages across all shards.
func (sc *ShardedClassIndex) SpaceBlocks() int64 { return sc.s.SpaceBlocks() }

// MetablockTree exposes the paper's core structure directly: diagonal
// corner queries over points with Y >= X (Section 3).
type MetablockTree struct {
	t *core.Tree
}

// NewMetablockTree builds the static structure over pts (Theorem 3.2).
func NewMetablockTree(cfg Config, pts []Point) *MetablockTree {
	return &MetablockTree{t: core.New(core.Config{B: cfg.B}, pts)}
}

// Insert adds a point (Section 3.2, Theorem 3.7).
func (mt *MetablockTree) Insert(p Point) { mt.t.Insert(p) }

// DiagonalQuery reports every point with X <= a and Y >= a.
func (mt *MetablockTree) DiagonalQuery(a int64, emit func(Point) bool) {
	mt.t.DiagonalQuery(a, geom.Emit(emit))
}

// Len returns the number of points.
func (mt *MetablockTree) Len() int { return mt.t.Len() }

// Stats returns cumulative I/O counters.
func (mt *MetablockTree) Stats() Stats { return mt.t.Pager().Stats() }

// Hierarchy is a static forest of classes.
type Hierarchy = classindex.Hierarchy

// NewHierarchy returns an empty hierarchy; add classes with AddClass and
// call Freeze before building an index.
func NewHierarchy() *Hierarchy { return classindex.NewHierarchy() }

// Strategy selects a class-indexing algorithm.
type Strategy int

// Class-indexing strategies.
const (
	// StrategySimple is Theorem 2.6: query O(log2 c log_B n + t/B), fully
	// dynamic objects.
	StrategySimple Strategy = iota
	// StrategyFullExtent is Lemma 4.2: optimal queries, space grows with
	// hierarchy depth.
	StrategyFullExtent
	// StrategyRakeContract is Theorem 4.7: query O(log_B n + log2 B + t/B),
	// space O((n/B) log2 c), semi-dynamic inserts.
	StrategyRakeContract
)

// ClassIndex indexes objects by one attribute over class full extents.
type ClassIndex struct {
	h  *Hierarchy
	si *classindex.SimpleIndex
	fe *classindex.FullExtentIndex
	rc *classindex.RakeContract

	// Durable state (nil/zero for in-memory instances): the file-backed
	// strategy wrapper and its checkpoint directory.
	du       *classindex.Durable
	dirPath  string
	strategy Strategy
	b        int
}

// classIndexManifestKind tags a durable class index's manifest.
const classIndexManifestKind = "ccidx-classindex"

// classIndexMeta is the configuration a durable class index records in its
// manifest: strategy, block capacity, and the full hierarchy, so
// OpenClassIndex needs nothing but the directory.
type classIndexMeta struct {
	Strategy  int                      `json:"strategy"`
	B         int                      `json:"b"`
	Hierarchy classindex.HierarchySpec `json:"hierarchy"`
}

// NewClassIndex builds an index over a frozen hierarchy.
//
// Deprecated: Use NewClassStore with Options{B: cfg.B}.
func NewClassIndex(h *Hierarchy, cfg Config, s Strategy) *ClassIndex {
	ci := &ClassIndex{h: h}
	switch s {
	case StrategySimple:
		ci.si = classindex.NewSimple(h, cfg.B)
	case StrategyFullExtent:
		ci.fe = classindex.NewFullExtent(h, cfg.B)
	case StrategyRakeContract:
		ci.rc = classindex.NewRakeContract(h, cfg.B)
	default:
		panic("ccidx: unknown strategy")
	}
	return ci
}

// CreateClassIndex builds a DURABLE, initially empty class index over a
// frozen hierarchy: the strategy's trees live on file-backed devices in dir
// and the hierarchy itself is recorded in the manifest, so OpenClassIndex
// needs only the directory. The empty state is checkpointed before
// returning.
//
// Deprecated: Use CreateClassStore with Options{B: cfg.B, Durability: ...}.
func CreateClassIndex(h *Hierarchy, cfg Config, s Strategy, dir string, opts ...DurableOptions) (*ClassIndex, error) {
	du, err := classindex.CreateDurable(dir, h, cfg.B, classindex.StrategyKind(s), durableOpts(opts).classes())
	if err != nil {
		return nil, err
	}
	ci := &ClassIndex{h: h, du: du, dirPath: dir, strategy: s, b: cfg.B}
	if err := ci.Checkpoint(); err != nil {
		du.CloseFiles()
		return nil, err
	}
	return ci, nil
}

// OpenClassIndex reopens the durable class index persisted in dir at its
// last committed checkpoint, rebuilding the hierarchy from the manifest.
//
// Deprecated: Use OpenClassStore, which auto-detects the persisted topology.
func OpenClassIndex(dir string, opts ...DurableOptions) (*ClassIndex, error) {
	mf, err := disk.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if mf.Kind != classIndexManifestKind {
		return nil, fmt.Errorf("ccidx: %s holds a %q checkpoint, not %q", dir, mf.Kind, classIndexManifestKind)
	}
	var cm classIndexMeta
	if err := json.Unmarshal(mf.Meta, &cm); err != nil {
		return nil, fmt.Errorf("ccidx: corrupt manifest meta in %s: %w", dir, err)
	}
	h, err := classindex.HierarchyFromSpec(cm.Hierarchy)
	if err != nil {
		return nil, err
	}
	du, err := classindex.OpenDurable(dir, h, cm.B, classindex.StrategyKind(cm.Strategy), mf.Seq, durableOpts(opts).classes())
	if err != nil {
		return nil, err
	}
	return &ClassIndex{h: h, du: du, dirPath: dir, strategy: Strategy(cm.Strategy), b: cm.B}, nil
}

// Checkpoint makes a durable class index's current state crash-safe
// (shadow superblocks committed by one manifest rename). Errors for
// in-memory instances.
func (ci *ClassIndex) Checkpoint() error {
	if ci.du == nil {
		return fmt.Errorf("ccidx: class index is not file-backed")
	}
	seq := ci.du.Seq() + 1
	if err := ci.du.PrepareCheckpoint(seq); err != nil {
		return err
	}
	metaJSON, err := json.Marshal(classIndexMeta{
		Strategy: int(ci.strategy), B: ci.b, Hierarchy: ci.h.Spec(),
	})
	if err != nil {
		return err
	}
	if err := disk.WriteManifest(ci.dirPath, disk.Manifest{
		Version: 1, Kind: classIndexManifestKind, Seq: seq, Meta: metaJSON,
	}); err != nil {
		if rerr := ci.du.RollbackCheckpoint(); rerr != nil {
			return fmt.Errorf("ccidx: rolling back after manifest failure: %v (original: %w)", rerr, err)
		}
		return err
	}
	return ci.du.CommitCheckpoint()
}

// Close closes a durable class index's files WITHOUT checkpointing. No-op
// for in-memory instances.
func (ci *ClassIndex) Close() error {
	if ci.du == nil {
		return nil
	}
	return ci.du.CloseFiles()
}

// Flush is a no-op: the unsharded class index applies mutations directly
// (no group-commit buffer). Part of the unified ClassStore surface.
func (ci *ClassIndex) Flush() {}

// Shards returns 1: the unsharded class index is a single shard.
func (ci *ClassIndex) Shards() int { return 1 }

// Hierarchy returns the (frozen) hierarchy the index serves.
func (ci *ClassIndex) Hierarchy() *Hierarchy { return ci.h }

func (ci *ClassIndex) classID(name string) int {
	id, ok := ci.h.Class(name)
	if !ok {
		panic("ccidx: unknown class " + name)
	}
	return id
}

// Insert adds an object with the given class name, attribute and id.
func (ci *ClassIndex) Insert(class string, attr int64, id uint64) {
	o := classindex.Object{Class: ci.classID(class), Attr: attr, ID: id}
	switch {
	case ci.du != nil:
		ci.du.Insert(o)
	case ci.si != nil:
		ci.si.Insert(o)
	case ci.fe != nil:
		ci.fe.Insert(o)
	default:
		ci.rc.Insert(o)
	}
}

// Delete removes an object, returning whether it was present. Every
// strategy supports it: StrategySimple and StrategyFullExtent delete from
// their B+-trees directly, and StrategyRakeContract combines B+-tree
// deletes with weak (tombstone) deletes plus global rebuilding on its
// 3-sided structures — the paper's structures are semi-dynamic (deletion is
// its open problem), so the rake-contract path is amortized:
// O(log2 c * log_B n) I/Os per delete.
func (ci *ClassIndex) Delete(class string, attr int64, id uint64) bool {
	o := classindex.Object{Class: ci.classID(class), Attr: attr, ID: id}
	switch {
	case ci.du != nil:
		return ci.du.Delete(o)
	case ci.si != nil:
		return ci.si.Delete(o)
	case ci.fe != nil:
		return ci.fe.Delete(o)
	default:
		return ci.rc.Delete(o)
	}
}

// Query reports every object in the FULL extent of the class whose
// attribute lies in [a1, a2].
func (ci *ClassIndex) Query(class string, a1, a2 int64, emit func(attr int64, id uint64) bool) {
	c := ci.classID(class)
	switch {
	case ci.du != nil:
		ci.du.Query(c, a1, a2, classindex.EmitObject(emit))
	case ci.si != nil:
		ci.si.Query(c, a1, a2, classindex.EmitObject(emit))
	case ci.fe != nil:
		ci.fe.Query(c, a1, a2, classindex.EmitObject(emit))
	default:
		ci.rc.Query(c, a1, a2, classindex.EmitObject(emit))
	}
}

// Stats returns cumulative I/O counters.
func (ci *ClassIndex) Stats() Stats {
	switch {
	case ci.du != nil:
		return ci.du.Stats()
	case ci.si != nil:
		return ci.si.Stats()
	case ci.fe != nil:
		return ci.fe.Stats()
	default:
		return ci.rc.Stats()
	}
}

// SpaceBlocks returns the number of disk blocks in use.
func (ci *ClassIndex) SpaceBlocks() int64 {
	switch {
	case ci.du != nil:
		return ci.du.SpaceBlocks()
	case ci.si != nil:
		return ci.si.SpaceBlocks()
	case ci.fe != nil:
		return ci.fe.SpaceBlocks()
	default:
		return ci.rc.SpaceBlocks()
	}
}
