// Package ccidx is a faithful Go implementation of the I/O-efficient index
// structures of Kanellakis, Ramaswamy, Vengroff and Vitter, "Indexing for
// Data Models with Constraints and Classes" (PODS 1993; JCSS 52:589-612,
// 1996).
//
// The package exposes the paper's two applications:
//
//   - IntervalManager: external dynamic interval management — the problem
//     indexing constraints reduces to (Section 2.1) — backed by the
//     metablock tree of Section 3 (space O(n/B), query O(log_B n + t/B),
//     amortized insert O(log_B n + (log_B n)^2/B)).
//   - ClassIndex: indexing by attribute and class over a static forest
//     hierarchy (Sections 2.2 and 4), with three strategies: the simple
//     range-tree solution of Theorem 2.6, full-extent replication of
//     Lemma 4.2, and the rake-and-contract decomposition of Theorem 4.7.
//
// The underlying structures (metablock tree, 3-sided metablock tree,
// external priority search tree, B+-tree, CQL layer) live in internal/
// packages; everything runs against a simulated block device whose
// read/write counters are the experiment currency. See DESIGN.md for the
// architecture and EXPERIMENTS.md for the reproduced bounds.
package ccidx

import (
	"ccidx/internal/classindex"
	"ccidx/internal/core"
	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
)

// Interval is a closed interval with an identifier.
type Interval = geom.Interval

// Point is a planar point with an identifier.
type Point = geom.Point

// Stats holds I/O counters of a simulated device.
type Stats = disk.Stats

// Config selects the block capacity B (records per page).
type Config struct {
	B int
}

// IntervalManager answers stabbing and intersection queries over a dynamic
// interval set (Proposition 2.2 + Theorem 3.7).
type IntervalManager struct {
	m *intervals.Manager
}

// NewIntervalManager builds a manager over an initial interval set.
func NewIntervalManager(cfg Config, ivs []Interval) *IntervalManager {
	return &IntervalManager{m: intervals.New(intervals.Config{B: cfg.B}, ivs)}
}

// Insert adds an interval (semi-dynamic, amortized O(log_B n + log_B^2 n/B)).
func (im *IntervalManager) Insert(iv Interval) { im.m.Insert(iv) }

// Len returns the number of intervals.
func (im *IntervalManager) Len() int { return im.m.Len() }

// Stab reports every interval containing q in O(log_B n + t/B) I/Os.
func (im *IntervalManager) Stab(q int64, emit func(Interval) bool) {
	im.m.Stab(q, intervals.EmitInterval(emit))
}

// Intersect reports every interval intersecting q exactly once, in
// O(log_B n + t/B) I/Os.
func (im *IntervalManager) Intersect(q Interval, emit func(Interval) bool) {
	im.m.Intersect(q, intervals.EmitInterval(emit))
}

// Stats returns cumulative I/O counters.
func (im *IntervalManager) Stats() Stats { return im.m.Stats() }

// SpaceBlocks returns the number of disk blocks in use.
func (im *IntervalManager) SpaceBlocks() int64 { return im.m.SpaceBlocks() }

// MetablockTree exposes the paper's core structure directly: diagonal
// corner queries over points with Y >= X (Section 3).
type MetablockTree struct {
	t *core.Tree
}

// NewMetablockTree builds the static structure over pts (Theorem 3.2).
func NewMetablockTree(cfg Config, pts []Point) *MetablockTree {
	return &MetablockTree{t: core.New(core.Config{B: cfg.B}, pts)}
}

// Insert adds a point (Section 3.2, Theorem 3.7).
func (mt *MetablockTree) Insert(p Point) { mt.t.Insert(p) }

// DiagonalQuery reports every point with X <= a and Y >= a.
func (mt *MetablockTree) DiagonalQuery(a int64, emit func(Point) bool) {
	mt.t.DiagonalQuery(a, geom.Emit(emit))
}

// Len returns the number of points.
func (mt *MetablockTree) Len() int { return mt.t.Len() }

// Stats returns cumulative I/O counters.
func (mt *MetablockTree) Stats() Stats { return mt.t.Pager().Stats() }

// Hierarchy is a static forest of classes.
type Hierarchy = classindex.Hierarchy

// NewHierarchy returns an empty hierarchy; add classes with AddClass and
// call Freeze before building an index.
func NewHierarchy() *Hierarchy { return classindex.NewHierarchy() }

// Strategy selects a class-indexing algorithm.
type Strategy int

// Class-indexing strategies.
const (
	// StrategySimple is Theorem 2.6: query O(log2 c log_B n + t/B), fully
	// dynamic objects.
	StrategySimple Strategy = iota
	// StrategyFullExtent is Lemma 4.2: optimal queries, space grows with
	// hierarchy depth.
	StrategyFullExtent
	// StrategyRakeContract is Theorem 4.7: query O(log_B n + log2 B + t/B),
	// space O((n/B) log2 c), semi-dynamic inserts.
	StrategyRakeContract
)

// ClassIndex indexes objects by one attribute over class full extents.
type ClassIndex struct {
	h  *Hierarchy
	si *classindex.SimpleIndex
	fe *classindex.FullExtentIndex
	rc *classindex.RakeContract
}

// NewClassIndex builds an index over a frozen hierarchy.
func NewClassIndex(h *Hierarchy, cfg Config, s Strategy) *ClassIndex {
	ci := &ClassIndex{h: h}
	switch s {
	case StrategySimple:
		ci.si = classindex.NewSimple(h, cfg.B)
	case StrategyFullExtent:
		ci.fe = classindex.NewFullExtent(h, cfg.B)
	case StrategyRakeContract:
		ci.rc = classindex.NewRakeContract(h, cfg.B)
	default:
		panic("ccidx: unknown strategy")
	}
	return ci
}

func (ci *ClassIndex) classID(name string) int {
	id, ok := ci.h.Class(name)
	if !ok {
		panic("ccidx: unknown class " + name)
	}
	return id
}

// Insert adds an object with the given class name, attribute and id.
func (ci *ClassIndex) Insert(class string, attr int64, id uint64) {
	o := classindex.Object{Class: ci.classID(class), Attr: attr, ID: id}
	switch {
	case ci.si != nil:
		ci.si.Insert(o)
	case ci.fe != nil:
		ci.fe.Insert(o)
	default:
		ci.rc.Insert(o)
	}
}

// Delete removes an object; only StrategySimple and StrategyFullExtent
// support it (the 3-sided structures of Theorem 4.7 are semi-dynamic, the
// paper's open problem).
func (ci *ClassIndex) Delete(class string, attr int64, id uint64) bool {
	o := classindex.Object{Class: ci.classID(class), Attr: attr, ID: id}
	switch {
	case ci.si != nil:
		return ci.si.Delete(o)
	case ci.fe != nil:
		return ci.fe.Delete(o)
	default:
		panic("ccidx: StrategyRakeContract does not support deletion")
	}
}

// Query reports every object in the FULL extent of the class whose
// attribute lies in [a1, a2].
func (ci *ClassIndex) Query(class string, a1, a2 int64, emit func(attr int64, id uint64) bool) {
	c := ci.classID(class)
	switch {
	case ci.si != nil:
		ci.si.Query(c, a1, a2, classindex.EmitObject(emit))
	case ci.fe != nil:
		ci.fe.Query(c, a1, a2, classindex.EmitObject(emit))
	default:
		ci.rc.Query(c, a1, a2, classindex.EmitObject(emit))
	}
}

// Stats returns cumulative I/O counters.
func (ci *ClassIndex) Stats() Stats {
	switch {
	case ci.si != nil:
		return ci.si.Stats()
	case ci.fe != nil:
		return ci.fe.Stats()
	default:
		return ci.rc.Stats()
	}
}

// SpaceBlocks returns the number of disk blocks in use.
func (ci *ClassIndex) SpaceBlocks() int64 {
	switch {
	case ci.si != nil:
		return ci.si.SpaceBlocks()
	case ci.fe != nil:
		return ci.fe.SpaceBlocks()
	default:
		return ci.rc.SpaceBlocks()
	}
}
